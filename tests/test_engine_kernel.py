"""The execution engine and kernel lifecycle / accounting invariants."""

import pytest

from repro.common.constants import PAGE_SIZE
from repro.common.events import AccessEvent, AccessType, ifetch, load, store
from repro.common.perms import MapFlags, Prot
from repro.hw.memory import FrameKind
from repro.kernel.engine import KernelPath
from tests.conftest import make_kernel

ANON = MapFlags.PRIVATE | MapFlags.ANONYMOUS


class TestEventValidation:
    def test_count_must_be_positive(self):
        with pytest.raises(ValueError):
            AccessEvent(AccessType.IFETCH, 0, count=0)

    def test_lines_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            AccessEvent(AccessType.IFETCH, 0, count=1, lines=999)
        with pytest.raises(ValueError):
            AccessEvent(AccessType.IFETCH, 0, count=1, lines=0)

    def test_lines_bounds_accepted(self):
        assert AccessEvent(AccessType.IFETCH, 0, count=1, lines=1).lines == 1
        assert AccessEvent(AccessType.IFETCH, 0, count=1,
                           lines=128).lines == 128

    def test_helpers(self):
        assert ifetch(0x1000).access is AccessType.IFETCH
        assert load(0x1000).access is AccessType.LOAD
        assert store(0x1000).access is AccessType.STORE


class TestInstructionAccounting:
    def make_env(self):
        kernel = make_kernel("shared-ptp")
        task = kernel.create_process("proc")
        vma = kernel.syscalls.mmap(task, 8 * PAGE_SIZE,
                                   Prot.READ | Prot.EXEC | Prot.WRITE,
                                   ANON)
        return kernel, task, vma

    def test_ifetch_counts_instructions(self):
        kernel, task, vma = self.make_env()
        kernel.run(task, [store(vma.start), ifetch(vma.start, count=500)])
        # 500 user instructions plus fault-handler kernel instructions.
        user = task.stats.instructions - task.stats.kernel_instructions
        assert user == 500

    def test_kernel_flag_routes_to_kernel_bucket(self):
        kernel, task, vma = self.make_env()
        kernel.run(task, [])  # Pay the context-switch path up front.
        before = task.stats.kernel_instructions
        event = AccessEvent(AccessType.IFETCH, 0xC0140000, count=300,
                            kernel=True)
        kernel.run(task, [event])
        assert task.stats.kernel_instructions - before == 300

    def test_load_does_not_count_instructions(self):
        kernel, task, vma = self.make_env()
        kernel.run(task, [store(vma.start)])
        before = task.stats.instructions - task.stats.kernel_instructions
        kernel.run(task, [load(vma.start, count=100)])
        after = task.stats.instructions - task.stats.kernel_instructions
        assert after == before

    def test_stats_charged_to_core_and_task(self):
        kernel, task, vma = self.make_env()
        kernel.run(task, [store(vma.start)], core_id=2)
        core = kernel.platform.cores[2]
        # Execution-side buckets mirror each other (syscall cycles from
        # the setup mmap were charged to the task before it had a core).
        assert core.stats.instructions == task.stats.instructions
        assert core.stats.l1i_stall == task.stats.l1i_stall
        assert core.stats.fault_overhead == task.stats.fault_overhead

    def test_fault_retry_resolves(self):
        kernel, task, vma = self.make_env()
        # A store to a fresh anon page: translation fault then success.
        kernel.run(task, [store(vma.start)])
        assert task.counters.anon_faults == 1

    def test_kernel_path_rotation_advances(self):
        kernel, task, vma = self.make_env()
        core = kernel.schedule(task)
        engine = kernel.engine
        start_before = engine._path_rotation[KernelPath.FAULT]
        engine.run_kernel_path(core, task, KernelPath.FAULT, 800)
        assert engine._path_rotation[KernelPath.FAULT] != start_before

    def test_kernel_path_zero_instructions_noop(self):
        kernel, task, vma = self.make_env()
        core = kernel.schedule(task)
        before = task.stats.instructions
        kernel.engine.run_kernel_path(core, task, KernelPath.FAULT, 0)
        assert task.stats.instructions == before

    def test_kernel_path_rotation_wraps_region(self):
        """A burst crossing the region end splits into two segments but
        charges exactly once."""
        kernel, task, vma = self.make_env()
        core = kernel.schedule(task)
        engine = kernel.engine
        span_lines = KernelPath.SYSCALL.value[1] // 32
        # Park the rotation near the end of the region.
        engine._path_rotation[KernelPath.SYSCALL] = span_lines - 3
        before = task.stats.kernel_instructions
        engine.run_kernel_path(core, task, KernelPath.SYSCALL, 100)
        assert task.stats.kernel_instructions - before == 100
        # 100 instructions = 13 lines: 3 at the end + 10 wrapped.
        assert engine._path_rotation[KernelPath.SYSCALL] == 10

    def test_kernel_path_capped_at_region_size(self):
        kernel, task, vma = self.make_env()
        core = kernel.schedule(task)
        fetches_before = core.caches.l1i.stats.accesses
        kernel.engine.run_kernel_path(core, task, KernelPath.SYSCALL,
                                      10**6)
        fetched_lines = core.caches.l1i.stats.accesses - fetches_before
        assert fetched_lines == KernelPath.SYSCALL.value[1] // 32


class TestKernelLifecycle:
    def test_pids_and_asids_unique(self):
        kernel = make_kernel()
        tasks = [kernel.create_process(f"p{i}") for i in range(5)]
        assert len({t.pid for t in tasks}) == 5
        assert len({t.asid for t in tasks}) == 5

    def test_exit_releases_all_frames(self):
        kernel = make_kernel("shared-ptp")
        task = kernel.create_process("proc")
        vma = kernel.syscalls.mmap(task, 16 * PAGE_SIZE,
                                   Prot.READ | Prot.WRITE, ANON)
        kernel.run(task, [store(vma.start + i * PAGE_SIZE)
                          for i in range(16)])
        kernel.exit_task(task)
        assert kernel.memory.live_frames(FrameKind.ANON) == 1  # Zero page.
        assert kernel.memory.live_frames(FrameKind.PTP) == 0

    def test_exit_clears_core_assignment(self):
        kernel = make_kernel()
        task = kernel.create_process("proc")
        core = kernel.schedule(task)
        kernel.exit_task(task)
        assert core.current_task is None

    def test_zero_frame_survives_everything(self):
        kernel = make_kernel()
        task = kernel.create_process("proc")
        vma = kernel.syscalls.mmap(task, PAGE_SIZE,
                                   Prot.READ | Prot.WRITE, ANON)
        kernel.run(task, [load(vma.start)])
        kernel.exit_task(task)
        assert kernel.zero_frame.mapcount >= 1

    def test_counter_scope_hits_global_and_task(self):
        kernel = make_kernel()
        task = kernel.create_process("proc")
        vma = kernel.syscalls.mmap(task, PAGE_SIZE,
                                   Prot.READ | Prot.WRITE, ANON)
        kernel.run(task, [store(vma.start)])
        assert kernel.counters.anon_faults == 1
        assert task.counters.anon_faults == 1

    def test_frame_refcounts_balanced_after_fork_and_exit(self):
        """No frame leaks across a full fork/run/exit cycle."""
        kernel = make_kernel("shared-ptp")
        parent = kernel.create_process("parent")
        file = kernel.page_cache.create_file("lib", 16)
        code = kernel.syscalls.mmap(parent, 16 * PAGE_SIZE,
                                    Prot.READ | Prot.EXEC,
                                    MapFlags.PRIVATE, file=file)
        heap = kernel.syscalls.mmap(parent, 8 * PAGE_SIZE,
                                    Prot.READ | Prot.WRITE, ANON)
        kernel.run(parent, [ifetch(code.start), store(heap.start)])
        for generation in range(3):
            child, _ = kernel.fork(parent, f"child{generation}")
            kernel.run(child, [store(heap.start + PAGE_SIZE),
                               ifetch(code.start + PAGE_SIZE)])
            kernel.exit_task(child)
        kernel.exit_task(parent)
        # Only the zero frame and page-cache file frames remain.
        assert kernel.memory.live_frames(FrameKind.PTP) == 0
        assert kernel.memory.live_frames(FrameKind.ANON) == 1
        for frame_pfn in range(1, 1 + kernel.memory.stats.allocated):
            pass  # Frame-level invariants enforced by put()/free() already.

    def test_snapshot_delta_cyclestats(self):
        kernel = make_kernel()
        task = kernel.create_process("proc")
        vma = kernel.syscalls.mmap(task, PAGE_SIZE,
                                   Prot.READ | Prot.WRITE, ANON)
        snap = task.stats.snapshot()
        kernel.run(task, [store(vma.start)])
        delta = task.stats.delta_since(snap)
        assert delta.total_cycles > 0
        assert delta.total_cycles <= task.stats.total_cycles
