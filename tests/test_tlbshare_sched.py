"""Shared TLB entries (Section 3.2) and scheduler TLB policies."""

import pytest

from repro.common.constants import (
    DOMAIN_USER,
    DOMAIN_ZYGOTE,
    PAGE_SIZE,
)
from repro.common.events import ifetch, store
from repro.common.perms import MapFlags, Prot
from repro.hw.domain import DomainAccess
from repro.hw.pagetable import Pte
from tests.conftest import make_kernel

ANON = MapFlags.PRIVATE | MapFlags.ANONYMOUS


def zygote_with_code(kernel, pages=8):
    zygote = kernel.create_process("zygote")
    kernel.exec_zygote(zygote)
    file = kernel.page_cache.create_file("libc", pages)
    code = kernel.syscalls.mmap(zygote, pages * PAGE_SIZE,
                                Prot.READ | Prot.EXEC, MapFlags.PRIVATE,
                                file=file)
    return zygote, code, file


class TestGlobalMarking:
    def test_zygote_code_mapping_marked_global(self):
        kernel = make_kernel("shared-ptp-tlb")
        _, code, _ = zygote_with_code(kernel)
        assert code.global_

    def test_data_mapping_not_global(self):
        kernel = make_kernel("shared-ptp-tlb")
        zygote, _, file = zygote_with_code(kernel)
        data = kernel.syscalls.mmap(zygote, PAGE_SIZE,
                                    Prot.READ | Prot.WRITE,
                                    MapFlags.PRIVATE, file=file,
                                    file_page_offset=1)
        assert not data.global_

    def test_non_zygote_mapping_not_global(self):
        kernel = make_kernel("shared-ptp-tlb")
        daemon = kernel.create_process("daemon")
        file = kernel.page_cache.create_file("lib", 4)
        vma = kernel.syscalls.mmap(daemon, 4 * PAGE_SIZE,
                                   Prot.READ | Prot.EXEC,
                                   MapFlags.PRIVATE, file=file)
        assert not vma.global_

    def test_stock_kernel_never_marks_global(self):
        kernel = make_kernel("stock")
        _, code, _ = zygote_with_code(kernel)
        assert not code.global_


class TestGlobalPtes:
    def test_pte_carries_global_bit(self):
        kernel = make_kernel("shared-ptp-tlb")
        zygote, code, _ = zygote_with_code(kernel)
        kernel.run(zygote, [ifetch(code.start)])
        pte = zygote.mm.tables.lookup_pte(code.start)[2]
        assert Pte.is_global(pte)

    def test_child_shares_tlb_entry(self):
        """One TLB entry serves zygote and child (no refill walk)."""
        kernel = make_kernel("shared-ptp-tlb")
        zygote, code, _ = zygote_with_code(kernel)
        kernel.run(zygote, [ifetch(code.start)])
        child, _ = kernel.fork(zygote, "app")
        core = kernel.schedule(child)
        misses_before = core.main_tlb.stats.misses
        kernel.run(child, [ifetch(code.start)])
        assert core.main_tlb.stats.misses == misses_before

    def test_domain_of_zygote_slots(self):
        kernel = make_kernel("shared-ptp-tlb")
        zygote, code, _ = zygote_with_code(kernel)
        kernel.run(zygote, [ifetch(code.start)])
        slot = zygote.mm.tables.slot_for(code.start)
        assert slot.domain == DOMAIN_ZYGOTE

    def test_domain_user_when_tlb_sharing_off(self):
        kernel = make_kernel("shared-ptp")
        zygote, code, _ = zygote_with_code(kernel)
        kernel.run(zygote, [ifetch(code.start)])
        slot = zygote.mm.tables.slot_for(code.start)
        assert slot.domain == DOMAIN_USER


class TestDacrAssignment:
    def test_zygote_like_gets_zygote_domain_access(self):
        kernel = make_kernel("shared-ptp-tlb")
        zygote, _, _ = zygote_with_code(kernel)
        child, _ = kernel.fork(zygote, "app")
        for task in (zygote, child):
            assert task.dacr.access(DOMAIN_ZYGOTE) == DomainAccess.CLIENT

    def test_non_zygote_denied_zygote_domain(self):
        kernel = make_kernel("shared-ptp-tlb")
        daemon = kernel.create_process("daemon")
        assert daemon.dacr.access(DOMAIN_ZYGOTE) == DomainAccess.NO_ACCESS


class TestDomainFaultPath:
    def test_daemon_collision_resolved_via_domain_fault(self):
        kernel = make_kernel("shared-ptp-tlb")
        zygote, code, file = zygote_with_code(kernel)
        kernel.run(zygote, [ifetch(code.start)])
        daemon = kernel.create_process("daemon")
        kernel.syscalls.mmap(daemon, code.end - code.start,
                             Prot.READ | Prot.EXEC, MapFlags.PRIVATE,
                             file=file, addr=code.start)
        kernel.run(daemon, [ifetch(code.start)])
        assert daemon.counters.domain_faults == 1
        # The daemon ends up with its own non-global entry and reruns
        # without further faults.
        core = kernel.schedule(daemon)
        kernel.run(daemon, [ifetch(code.start)])
        assert daemon.counters.domain_faults == 1

    def test_domain_fault_flushes_matching_entry_only(self):
        kernel = make_kernel("shared-ptp-tlb")
        zygote, code, file = zygote_with_code(kernel)
        kernel.run(zygote, [ifetch(code.start),
                            ifetch(code.start + PAGE_SIZE)])
        core = kernel.schedule(zygote)
        occupancy_before = core.main_tlb.occupancy()
        daemon = kernel.create_process("daemon")
        kernel.syscalls.mmap(daemon, code.end - code.start,
                             Prot.READ | Prot.EXEC, MapFlags.PRIVATE,
                             file=file, addr=code.start)
        kernel.run(daemon, [ifetch(code.start)])
        # Only the colliding VA was flushed; the second page's global
        # entry survived.
        assert core.main_tlb.lookup(
            (code.start + PAGE_SIZE) >> 12, zygote.asid
        ) is not None


class TestSchedulerPolicies:
    def test_micro_tlbs_always_flushed(self):
        kernel = make_kernel("shared-ptp-tlb")
        zygote, code, _ = zygote_with_code(kernel)
        kernel.run(zygote, [ifetch(code.start)])
        core = kernel.platform.cores[0]
        assert core.micro_itlb.lookup(code.start >> 12) is not None
        flushes_before = core.micro_itlb.stats.flushes
        other = kernel.create_process("other")
        kernel.schedule(other)
        # The flush happened; the user entry is gone (the switch path's
        # own kernel code may repopulate kernel entries afterwards).
        assert core.micro_itlb.stats.flushes > flushes_before
        assert core.micro_itlb.lookup(code.start >> 12) is None

    def test_asid_enabled_preserves_main_tlb(self):
        kernel = make_kernel("shared-ptp-tlb", asid_enabled=True)
        zygote, code, _ = zygote_with_code(kernel)
        kernel.run(zygote, [ifetch(code.start)])
        core = kernel.platform.cores[0]
        occupancy = core.main_tlb.occupancy()
        kernel.schedule(kernel.create_process("other"))
        assert core.main_tlb.occupancy() == occupancy

    def test_asid_disabled_flushes_non_global(self):
        kernel = make_kernel("shared-ptp-tlb", asid_enabled=False)
        zygote, code, file = zygote_with_code(kernel)
        heap = kernel.syscalls.mmap(zygote, PAGE_SIZE,
                                    Prot.READ | Prot.WRITE, ANON)
        kernel.run(zygote, [ifetch(code.start), store(heap.start)])
        core = kernel.platform.cores[0]
        kernel.schedule(kernel.create_process("other"))
        survivors = core.main_tlb.entries()
        assert survivors  # Globals survive (code + kernel sections).
        assert all(e.global_ for e in survivors)

    def test_domainless_fallback_flushes_globals_on_group_switch(self):
        kernel = make_kernel("shared-ptp-tlb", domain_support=False)
        zygote, code, _ = zygote_with_code(kernel)
        kernel.run(zygote, [ifetch(code.start)])
        core = kernel.platform.cores[0]
        assert core.main_tlb.lookup(code.start >> 12, zygote.asid) is not None
        daemon = kernel.create_process("daemon")
        kernel.schedule(daemon)
        # The zygote's shared global code entry was flushed (the switch
        # path repopulates kernel-text entries afterwards).
        assert core.main_tlb.lookup(code.start >> 12, zygote.asid) is None

    def test_domainless_fallback_keeps_globals_within_group(self):
        kernel = make_kernel("shared-ptp-tlb", domain_support=False)
        zygote, code, _ = zygote_with_code(kernel)
        kernel.run(zygote, [ifetch(code.start)])
        child, _ = kernel.fork(zygote, "app")
        core = kernel.platform.cores[0]
        globals_before = core.main_tlb.global_entry_count()
        kernel.schedule(child)  # zygote-like -> zygote-like.
        assert core.main_tlb.global_entry_count() == globals_before

    def test_pinning_enforced(self):
        kernel = make_kernel("shared-ptp")
        task = kernel.create_process("pinned")
        task.pinned_core = 1
        with pytest.raises(ValueError):
            kernel.scheduler.switch_to(kernel.platform.cores[0], task)
        kernel.schedule(task)  # Uses the pinned core.
        assert kernel.platform.cores[1].current_task is task

    def test_pick_next_group_scheduling(self):
        kernel = make_kernel("shared-ptp-tlb", domain_support=False,
                             group_scheduling=True)
        zygote, _, _ = zygote_with_code(kernel)
        child, _ = kernel.fork(zygote, "app")
        daemon = kernel.create_process("daemon")
        chosen = kernel.scheduler.pick_next([daemon, child], prev=zygote)
        assert chosen is child  # Same group preferred.

    def test_context_switch_counted(self):
        kernel = make_kernel("shared-ptp")
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        kernel.schedule(a)
        kernel.schedule(b)
        kernel.schedule(b)  # No-op.
        assert b.counters.context_switches == 1
        assert b.stats.context_switch_cycles > 0
