"""The domain model (DACR) and the MMU translation pipeline."""

import pytest

from repro.common.constants import (
    DOMAIN_KERNEL,
    DOMAIN_USER,
    DOMAIN_ZYGOTE,
    KERNEL_SPACE_START,
    PAGE_SIZE,
)
from repro.common.errors import ConfigError
from repro.common.events import AccessType
from repro.common.perms import MapFlags, Prot
from repro.hw.domain import Dacr, DomainAccess, stock_dacr, zygote_dacr
from repro.hw.mmu import FaultKind
from tests.conftest import make_kernel


class TestDacr:
    def test_default_no_access(self):
        dacr = Dacr({})
        assert dacr.access(5) == DomainAccess.NO_ACCESS
        assert not dacr.grants(5)

    def test_stock_dacr_grants_user_and_kernel(self):
        dacr = stock_dacr()
        assert dacr.grants(DOMAIN_KERNEL)
        assert dacr.grants(DOMAIN_USER)
        assert not dacr.grants(DOMAIN_ZYGOTE)

    def test_zygote_dacr_adds_zygote_domain(self):
        dacr = zygote_dacr()
        assert dacr.access(DOMAIN_ZYGOTE) == DomainAccess.CLIENT

    def test_with_access_is_pure(self):
        base = stock_dacr()
        modified = base.with_access(5, DomainAccess.MANAGER)
        assert not base.grants(5)
        assert modified.access(5) == DomainAccess.MANAGER

    def test_out_of_range_domain_rejected(self):
        with pytest.raises(ConfigError):
            stock_dacr().access(16)
        with pytest.raises(ConfigError):
            Dacr({16: DomainAccess.CLIENT})

    def test_equality(self):
        assert stock_dacr() == stock_dacr()
        assert stock_dacr() != zygote_dacr()


class _MmuHarness:
    """A kernel with one mapped task, for raw-MMU tests."""

    def __init__(self, config_name="shared-ptp-tlb"):
        self.kernel = make_kernel(config_name)
        self.task = self.kernel.create_process("proc")
        file = self.kernel.page_cache.create_file("lib", 16)
        self.code = self.kernel.syscalls.mmap(
            self.task, 16 * PAGE_SIZE, Prot.READ | Prot.EXEC,
            MapFlags.PRIVATE, file=file,
        )
        self.core = self.kernel.schedule(self.task)
        self.mmu = self.kernel.platform.mmu

    def translate(self, vaddr, access=AccessType.IFETCH):
        return self.mmu.translate(self.core, self.task, vaddr, access)


class TestUserTranslation:
    def test_unmapped_page_is_translation_fault(self):
        h = _MmuHarness()
        result = h.translate(h.code.start)
        assert result.fault is FaultKind.TRANSLATION
        assert result.walked

    def test_translation_after_population(self):
        h = _MmuHarness()
        outcome = h.kernel.fault_handler.handle(
            h.core, h.task, h.code.start, AccessType.IFETCH,
            FaultKind.TRANSLATION,
        )
        assert outcome.kernel_instructions > 0
        result = h.translate(h.code.start)
        assert result.ok
        assert result.walked  # First successful translation walks.
        again = h.translate(h.code.start)
        assert again.ok and again.micro_hit

    def test_main_tlb_hit_after_micro_flush(self):
        h = _MmuHarness()
        h.kernel.fault_handler.handle(h.core, h.task, h.code.start,
                                      AccessType.IFETCH,
                                      FaultKind.TRANSLATION)
        h.translate(h.code.start)
        h.core.flush_micro_tlbs()
        result = h.translate(h.code.start)
        assert result.ok and result.main_hit and not result.micro_hit

    def test_store_to_readonly_is_permission_fault(self):
        h = _MmuHarness()
        heap = h.kernel.syscalls.mmap(
            h.task, PAGE_SIZE, Prot.READ | Prot.WRITE,
            MapFlags.PRIVATE | MapFlags.ANONYMOUS,
        )
        # Read fault maps the zero page read-only.
        h.kernel.fault_handler.handle(h.core, h.task, heap.start,
                                      AccessType.LOAD,
                                      FaultKind.TRANSLATION)
        result = h.translate(heap.start, AccessType.STORE)
        assert result.fault is FaultKind.PERMISSION

    def test_walk_marks_referenced(self):
        h = _MmuHarness()
        h.kernel.fault_handler.handle(h.core, h.task, h.code.start,
                                      AccessType.IFETCH,
                                      FaultKind.TRANSLATION)
        slot = h.task.mm.tables.slot_for(h.code.start)
        slot.ptp.shadow[0] = 0  # Clear young.
        h.core.flush_all_tlbs()
        h.translate(h.code.start)
        assert slot.ptp.is_young(0)

    def test_translation_stall_charged_on_walk(self):
        h = _MmuHarness()
        h.kernel.fault_handler.handle(h.core, h.task, h.code.start,
                                      AccessType.IFETCH,
                                      FaultKind.TRANSLATION)
        result = h.translate(h.code.start)
        assert result.translation_stall >= h.kernel.cost.walk_base


class TestDomainFaults:
    def test_global_entry_denied_to_non_zygote(self):
        """The confinement mechanism of Section 3.2.3."""
        h = _MmuHarness("shared-ptp-tlb")
        kernel = h.kernel
        # Make the mapping zygote-owned and global.
        zygote = kernel.create_process("zygote")
        kernel.exec_zygote(zygote)
        file = kernel.page_cache.create_file("libc", 8)
        code = kernel.syscalls.mmap(zygote, 8 * PAGE_SIZE,
                                    Prot.READ | Prot.EXEC,
                                    MapFlags.PRIVATE, file=file)
        assert code.global_
        core = kernel.schedule(zygote)
        kernel.run(zygote, [])
        # Zygote faults the page in and loads a global TLB entry.
        from repro.common.events import ifetch
        kernel.run(zygote, [ifetch(code.start)])
        entry = core.main_tlb.lookup(code.start >> 12, zygote.asid)
        assert entry is not None and entry.global_
        assert entry.domain == DOMAIN_ZYGOTE

        # A non-zygote daemon mapping the same file at the same address
        # matches the global entry but lacks domain rights.
        daemon = kernel.create_process("daemon")
        kernel.syscalls.mmap(daemon, 8 * PAGE_SIZE, Prot.READ | Prot.EXEC,
                             MapFlags.PRIVATE, file=file, addr=code.start)
        kernel.schedule(daemon)
        result = kernel.platform.mmu.translate(
            core, daemon, code.start, AccessType.IFETCH
        )
        assert result.fault is FaultKind.DOMAIN


class TestKernelTranslation:
    def test_kernel_address_translates_globally(self):
        h = _MmuHarness()
        vaddr = KERNEL_SPACE_START + 0x100000
        result = h.translate(vaddr)
        assert result.ok
        assert result.entry.global_
        assert result.entry.domain == DOMAIN_KERNEL
        assert result.entry.span_pages == 256

    def test_kernel_section_covers_neighbouring_pages(self):
        h = _MmuHarness()
        base = KERNEL_SPACE_START + 0x300000
        h.translate(base)
        result = h.translate(base + 5 * PAGE_SIZE)
        assert result.ok and not result.walked

    def test_kernel_paddr_linear(self):
        from repro.hw.mmu import Mmu
        assert (Mmu.kernel_paddr(KERNEL_SPACE_START + 4096)
                - Mmu.kernel_paddr(KERNEL_SPACE_START)) == 4096
