"""ARM page tables: PTE encoding, PTPs, and the per-space tree."""

import pytest
from hypothesis import given, strategies as st

from repro.common.constants import DOMAIN_USER, PTES_PER_PTP, PTP_SPAN
from repro.common.errors import SimulationError
from repro.hw.memory import FrameKind, PhysicalMemory
from repro.hw.pagetable import AddressSpaceTables, PageTablePage, Pte


@pytest.fixture
def memory():
    return PhysicalMemory()


def make_ptp(memory, base_va=0x40000000):
    return PageTablePage(frame=memory.allocate(FrameKind.PTP),
                         base_va=base_va)


class TestPteEncoding:
    def test_roundtrip_pfn(self):
        pte = Pte.make(0x12345, writable=True, executable=True)
        assert Pte.pfn(pte) == 0x12345
        assert Pte.is_valid(pte)
        assert Pte.is_writable(pte)
        assert Pte.is_executable(pte)
        assert not Pte.is_global(pte)

    def test_global_bit(self):
        pte = Pte.make(1, global_=True)
        assert Pte.is_global(pte)

    def test_write_protect_clears_only_write(self):
        pte = Pte.make(7, writable=True, executable=True, global_=True)
        protected = Pte.write_protect(pte)
        assert not Pte.is_writable(protected)
        assert Pte.is_executable(protected)
        assert Pte.is_global(protected)
        assert Pte.pfn(protected) == 7

    @given(st.integers(min_value=0, max_value=(1 << 20) - 1),
           st.booleans(), st.booleans(), st.booleans(), st.booleans())
    def test_encoding_preserves_all_fields(self, pfn, writable, global_,
                                           executable, large):
        pte = Pte.make(pfn, writable=writable, global_=global_,
                       executable=executable, large=large)
        assert Pte.pfn(pte) == pfn
        assert Pte.is_writable(pte) == writable
        assert Pte.is_global(pte) == global_
        assert Pte.is_executable(pte) == executable
        assert bool(pte & Pte.LARGE) == large


class TestPageTablePage:
    def test_set_and_clear_track_valid_count(self, memory):
        ptp = make_ptp(memory)
        ptp.set(0, Pte.make(1))
        ptp.set(511, Pte.make(2))
        assert ptp.valid_count == 2
        # Overwriting a valid entry does not double count.
        ptp.set(0, Pte.make(3))
        assert ptp.valid_count == 2
        old = ptp.clear(0)
        assert Pte.pfn(old) == 3
        assert ptp.valid_count == 1

    def test_set_invalid_pte_rejected(self, memory):
        ptp = make_ptp(memory)
        with pytest.raises(SimulationError):
            ptp.set(0, 0)

    def test_shadow_young_dirty(self, memory):
        ptp = make_ptp(memory)
        ptp.set(4, Pte.make(9))
        assert ptp.is_young(4)  # Set marks young.
        ptp.mark_dirty(4)
        assert ptp.shadow[4] & Pte.SHADOW_DIRTY

    def test_clear_resets_shadow(self, memory):
        ptp = make_ptp(memory)
        ptp.set(4, Pte.make(9))
        ptp.clear(4)
        assert not ptp.is_young(4)

    def test_pte_paddr_identity(self, memory):
        """Shared PTPs imply shared PTE cache lines (paper, Figure 1)."""
        ptp = make_ptp(memory)
        assert ptp.pte_paddr(0) == ptp.frame.paddr
        assert ptp.pte_paddr(3) == ptp.frame.paddr + 12
        other = make_ptp(memory)
        assert ptp.pte_paddr(3) != other.pte_paddr(3)

    def test_write_protect_all(self, memory):
        ptp = make_ptp(memory)
        ptp.set(0, Pte.make(1, writable=True))
        ptp.set(1, Pte.make(2, writable=False))
        ptp.set(2, Pte.make(3, writable=True))
        changed = ptp.write_protect_all()
        assert changed == 2
        assert ptp.write_protected
        assert all(not Pte.is_writable(pte) for _, pte in ptp.iter_valid())

    def test_copy_entries_all(self, memory):
        src, dst = make_ptp(memory), make_ptp(memory)
        for index in (0, 100, 511):
            src.set(index, Pte.make(index + 1))
        copied = src.copy_entries_to(dst)
        assert copied == 3
        assert dst.valid_count == 3
        assert Pte.pfn(dst.get(100)) == 101

    def test_copy_entries_referenced_only(self, memory):
        """The Section 3.1.3 ablation: skip unreferenced PTEs."""
        src, dst = make_ptp(memory), make_ptp(memory)
        src.set(0, Pte.make(1))
        src.set(1, Pte.make(2))
        src.shadow[1] = 0  # Simulate never-referenced.
        copied = src.copy_entries_to(dst, only_referenced=True)
        assert copied == 1
        assert Pte.is_valid(dst.get(0))
        assert not Pte.is_valid(dst.get(1))

    def test_iter_valid_yields_sorted_indexes(self, memory):
        ptp = make_ptp(memory)
        for index in (200, 5, 77):
            ptp.set(index, Pte.make(index))
        assert [i for i, _ in ptp.iter_valid()] == [5, 77, 200]

    @given(st.sets(st.integers(min_value=0, max_value=PTES_PER_PTP - 1),
                   max_size=64))
    def test_valid_count_matches_iteration(self, indexes):
        memory = PhysicalMemory()
        ptp = make_ptp(memory)
        for index in indexes:
            ptp.set(index, Pte.make(index + 1))
        assert ptp.valid_count == len(indexes)
        assert ptp.valid_count == sum(1 for _ in ptp.iter_valid())


class TestAddressSpaceTables:
    def test_install_takes_frame_reference(self, memory):
        tables = AddressSpaceTables()
        ptp = make_ptp(memory)
        tables.install(512, ptp)
        assert ptp.frame.mapcount == 1

    def test_double_install_rejected(self, memory):
        tables = AddressSpaceTables()
        tables.install(512, make_ptp(memory))
        with pytest.raises(SimulationError):
            tables.install(512, make_ptp(memory))

    def test_detach_drops_reference(self, memory):
        tables = AddressSpaceTables()
        ptp = make_ptp(memory)
        tables.install(512, ptp)
        returned = tables.detach(512)
        assert returned is ptp
        assert ptp.frame.mapcount == 0
        assert tables.slot(512) is None

    def test_detach_empty_slot_rejected(self, memory):
        with pytest.raises(SimulationError):
            AddressSpaceTables().detach(3)

    def test_lookup_pte(self, memory):
        tables = AddressSpaceTables()
        vaddr = 0x40001000
        slot_index = tables.slot_index(vaddr)
        ptp = make_ptp(memory)
        tables.install(slot_index, ptp)
        assert tables.lookup_pte(vaddr) is None  # Not populated yet.
        ptp.set(1, Pte.make(42))
        found = tables.lookup_pte(vaddr)
        assert found is not None
        assert found[0] is ptp and found[1] == 1
        assert Pte.pfn(found[2]) == 42

    def test_sharing_one_ptp_between_two_trees(self, memory):
        """The core structural idea: two spaces, one PTP."""
        parent, child = AddressSpaceTables(), AddressSpaceTables()
        ptp = make_ptp(memory)
        parent.install(512, ptp)
        child.install(512, ptp, need_copy=True)
        assert ptp.sharer_count == 2
        ptp.set(7, Pte.make(99))
        # Visible through both trees.
        vaddr = 512 * PTP_SPAN + 7 * 4096
        assert parent.lookup_pte(vaddr) is not None
        assert child.lookup_pte(vaddr) is not None
        assert child.slot(512).need_copy

    def test_populated_slots_sorted(self, memory):
        tables = AddressSpaceTables()
        for index in (900, 512, 700):
            tables.install(index, make_ptp(memory))
        assert [i for i, _ in tables.populated_slots()] == [512, 700, 900]

    def test_valid_pte_count(self, memory):
        tables = AddressSpaceTables()
        ptp = make_ptp(memory)
        tables.install(512, ptp)
        ptp.set(0, Pte.make(1))
        ptp.set(1, Pte.make(2))
        assert tables.valid_pte_count() == 2

    def test_slot_domain_recorded(self, memory):
        tables = AddressSpaceTables()
        tables.install(512, make_ptp(memory), domain=2)
        assert tables.slot(512).domain == 2
