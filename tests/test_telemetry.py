"""Orchestrator telemetry: hit/miss accounting and summary rendering."""

from repro.orchestrate.telemetry import CellRecord, Telemetry


def make_telemetry(progress=None) -> Telemetry:
    """Telemetry pre-loaded with two misses and one cache hit."""
    telemetry = Telemetry(progress=progress)
    telemetry.record("exp/slow", "d1", 4.0, cached=False,
                     position=1, total=3)
    telemetry.record("exp/fast", "d2", 1.0, cached=False,
                     position=2, total=3)
    telemetry.record("exp/hit", "d3", 2.5, cached=True,
                     position=3, total=3)
    return telemetry


class TestAccounting:
    def test_hits_and_misses(self):
        telemetry = make_telemetry()
        assert telemetry.hits == 1
        assert telemetry.misses == 2

    def test_compute_counts_misses_only(self):
        assert make_telemetry().compute_seconds == 5.0

    def test_saved_counts_hits_only(self):
        assert make_telemetry().saved_seconds == 2.5

    def test_slowest_orders_fresh_cells_by_elapsed(self):
        slowest = make_telemetry().slowest(5)
        assert [r.name for r in slowest] == ["exp/slow", "exp/fast"]

    def test_slowest_excludes_cache_hits(self):
        names = {r.name for r in make_telemetry().slowest(5)}
        assert "exp/hit" not in names

    def test_slowest_respects_count(self):
        slowest = make_telemetry().slowest(1)
        assert [r.name for r in slowest] == ["exp/slow"]

    def test_wall_clock_accumulates_across_batches(self):
        telemetry = Telemetry()
        for _ in range(2):
            telemetry.batch_started()
            telemetry.batch_finished()
        assert telemetry.wall_seconds >= 0.0
        assert len(telemetry.records) == 0

    def test_batch_finished_without_start_is_a_no_op(self):
        """Unpaired batch_finished() must not add perf_counter()-0.0
        (effectively the process uptime) to the wall clock."""
        telemetry = Telemetry()
        telemetry.batch_finished()
        assert telemetry.wall_seconds == 0.0

    def test_batch_finished_closes_the_batch(self):
        """A second batch_finished() after one paired batch must not
        double-count: the first close consumes the start mark."""
        telemetry = Telemetry()
        telemetry.batch_started()
        telemetry.batch_finished()
        wall = telemetry.wall_seconds
        telemetry.batch_finished()
        assert telemetry.wall_seconds == wall


class TestRendering:
    def test_summary_mentions_all_buckets(self):
        line = make_telemetry().summary()
        assert "3 cells" in line
        assert "1 cache hit" in line
        assert "2 misses" in line
        assert "compute 5.0s" in line
        assert "saved ~2.5s" in line
        assert "slowest exp/slow (4.0s)" in line

    def test_summary_all_hits_omits_compute(self):
        telemetry = Telemetry()
        telemetry.record("exp/hit", "d1", 3.0, cached=True,
                         position=1, total=1)
        line = telemetry.summary()
        assert "1 cache hit" in line
        assert "compute" not in line
        assert "saved ~3.0s" in line
        assert "slowest" not in line

    def test_summary_singular_plural(self):
        telemetry = Telemetry()
        telemetry.record("exp/only", "d1", 1.0, cached=False,
                         position=1, total=1)
        assert "1 cell," in telemetry.summary()

    def test_progress_lines(self):
        lines = []
        make_telemetry(progress=lines.append)
        assert lines == [
            "[cell 1/3] exp/slow: 4.00s",
            "[cell 2/3] exp/fast: 1.00s",
            "[cell 3/3] exp/hit: cache hit",
        ]

    def test_no_progress_sink_is_silent(self):
        telemetry = Telemetry()
        telemetry.record("exp/x", "d", 0.1, cached=False,
                         position=1, total=1)  # Must not raise.
        assert telemetry.records == [CellRecord("exp/x", "d", 0.1, False)]
