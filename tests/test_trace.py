"""The trace subsystem: ring semantics, exports, aggregation, overhead.

Covers the contracts ``repro.trace`` promises: ring wraparound with
drop-immune per-type counts, NullTracer's zero-cost disabled path
(structurally and by wall clock), lossless JSONL and Chrome round
trips, the aggregation views, and serial-vs-parallel payload equality
through the orchestrator.
"""

import json
import time

import pytest

from repro.android.zygote import ZygoteCalibration, boot_android
from repro.common.constants import PAGE_SIZE
from repro.common.events import load, store
from repro.common.perms import MapFlags, Prot
from repro.experiments.common import QUICK
from repro.experiments.tracing import COUNTER_PAIRS, run_trace
from repro.kernel.config import shared_ptp_config
from repro.kernel.kernel import Kernel
from repro.orchestrate import Orchestrator
from repro.trace import (
    NULL_TRACER,
    EventType,
    NullTracer,
    TraceEvent,
    Tracer,
    chrome_trace_dict,
    counts_by_type,
    fault_timelines,
    parse_chrome,
    read_jsonl,
    time_histogram,
    top_unshare_offenders,
    write_chrome,
    write_jsonl,
)
from repro.trace.aggregate import ptp_region

ANON = MapFlags.PRIVATE | MapFlags.ANONYMOUS


def synthetic_events():
    """A tiny stream exercising every optional field combination."""
    return [
        TraceEvent(0, 0.0, EventType.PAGE_FAULT, pid=3, vaddr=0x1000,
                   cause="translation"),
        TraceEvent(1, 4.0, EventType.SOFT_FAULT, pid=3, vaddr=0x2000,
                   cause="warm-file"),
        TraceEvent(2, 5.0, EventType.PTP_UNSHARE, pid=3, ptp=2,
                   cause="write", value=1),
        TraceEvent(3, 9.0, EventType.CTX_SWITCH, pid=-1, cause="core0",
                   value=1),
    ]


class TestTraceEvent:
    def test_dict_round_trip(self):
        for event in synthetic_events():
            assert TraceEvent.from_dict(event.to_dict()) == event

    def test_to_dict_omits_unset_fields(self):
        record = TraceEvent(0, 1.0, EventType.FORK, pid=2).to_dict()
        assert "vaddr" not in record and "ptp" not in record
        assert record["etype"] == "fork"

    def test_from_dict_tolerates_extra_keys(self):
        record = synthetic_events()[0].to_dict()
        record["cell"] = "stock"  # The multi-cell JSONL export adds this.
        assert TraceEvent.from_dict(record) == synthetic_events()[0]

    def test_equality_and_hash(self):
        first, second = synthetic_events()[0], synthetic_events()[0]
        assert first == second
        assert hash(first) == hash(second)
        assert first != synthetic_events()[1]


class TestRing:
    def test_wraparound_keeps_newest_and_counts_all(self):
        tracer = Tracer(ring_size=4)
        for _ in range(10):
            tracer.emit(EventType.PAGE_FAULT, pid=1)
        assert tracer.emitted == 10
        assert tracer.dropped == 6
        assert [e.seq for e in tracer.events()] == [6, 7, 8, 9]
        # Per-type counts are updated at emit time: drop-immune.
        assert tracer.counts == {"page_fault": 10}

    def test_summary_accounting(self):
        tracer = Tracer(ring_size=4)
        for _ in range(6):
            tracer.emit(EventType.TLB_FILL)
        summary = tracer.summary()
        assert summary["emitted"] == 6
        assert summary["dropped"] == 2
        assert summary["retained"] == 4
        assert summary["ring_size"] == 4
        assert summary["counts"] == {"tlb_fill": 6}

    def test_clock_stamps_time(self):
        tracer = Tracer(ring_size=8)
        tracer.bind_clock(lambda: 42.5)
        tracer.emit(EventType.FORK, pid=1)
        assert tracer.events()[0].time == 42.5

    def test_ring_size_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(ring_size=0)

    @pytest.mark.parametrize("bad", [2.5, "64", None, True])
    def test_ring_size_must_be_an_integer(self, bad):
        """Floats would make ``deque(maxlen=...)`` raise far from the
        call site; bools are almost certainly a caller bug."""
        with pytest.raises(ValueError):
            Tracer(ring_size=bad)

    def test_clear_resets_everything(self):
        tracer = Tracer(ring_size=4)
        tracer.emit(EventType.FORK)
        tracer.clear()
        assert tracer.emitted == 0
        assert tracer.events() == []
        assert tracer.counts == {}


class _CountingNullTracer(NullTracer):
    """A disabled tracer that counts emit calls; guards must keep it 0."""

    def __init__(self):
        self.calls = 0

    def emit(self, *args, **kwargs):
        self.calls += 1


def _run_traced_workload(tracer):
    """Boot a small runtime and churn forks under the given tracer."""
    kernel = Kernel(config=shared_ptp_config(), tracer=tracer)
    runtime = boot_android(kernel, calibration=ZygoteCalibration.small())
    for index in range(3):
        child, _ = runtime.fork_app(f"overhead-{index}")
        kernel.exit_task(child)
    return kernel


class TestNullTracer:
    def test_singleton_is_disabled_and_empty(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.summary() == {
            "emitted": 0, "dropped": 0, "retained": 0, "ring_size": 0,
            "counts": {},
        }
        NULL_TRACER.emit(EventType.FORK)  # Safe no-op even unguarded.
        assert NULL_TRACER.events() == []

    def test_disabled_tracer_never_reaches_emit(self):
        """Every instrumented hot path must branch on ``enabled``."""
        counting = _CountingNullTracer()
        _run_traced_workload(counting)
        assert counting.calls == 0

    def test_disabled_overhead_within_five_percent(self):
        """Min-of-N wall clock: disabled tracing must not cost more
        than 5% over an enabled tracer doing the same run (it should
        in fact be faster; the margin absorbs scheduler noise)."""
        def best_of(tracer_factory, runs=3):
            best = float("inf")
            for _ in range(runs):
                start = time.perf_counter()
                _run_traced_workload(tracer_factory())
                best = min(best, time.perf_counter() - start)
            return best

        disabled = best_of(lambda: None)  # Kernel substitutes NULL_TRACER.
        enabled = best_of(Tracer)
        assert disabled <= enabled * 1.05


class TestKernelIntegration:
    def test_counts_match_counters_over_kernel_lifetime(self):
        """The counter-agreement invariant on a hand-built workload."""
        tracer = Tracer()
        kernel = Kernel(config=shared_ptp_config(), tracer=tracer)
        task = kernel.create_process("proc")
        vma = kernel.syscalls.mmap(task, 4 * PAGE_SIZE,
                                   Prot.READ | Prot.WRITE, ANON)
        # Read maps the zero page; the store then breaks COW.
        kernel.run(task, [load(vma.start), store(vma.start)])
        child, _ = kernel.fork(task, "child")
        kernel.run(child, [store(vma.start + PAGE_SIZE)])
        kernel.exit_task(child)
        kernel.exit_task(task)
        for event_key, counter_key in COUNTER_PAIRS:
            assert tracer.counts.get(event_key, 0) == getattr(
                kernel.counters, counter_key), event_key
        assert tracer.counts.get("cow_unshare", 0) >= 1

    def test_clock_is_simulated_time(self):
        tracer = Tracer()
        kernel = _run_traced_workload(tracer)
        events = tracer.events()
        assert events, "workload should emit events"
        times = [e.time for e in events]
        assert times == sorted(times)
        assert times[-1] <= kernel.sim_time()


class TestExports:
    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        events = synthetic_events()
        assert write_jsonl(events, path) == len(events)
        assert read_jsonl(path) == events

    def test_chrome_round_trip(self, tmp_path):
        cells = [("stock", synthetic_events()),
                 ("shared-ptp", synthetic_events()[:2])]
        path = str(tmp_path / "trace.json")
        written = write_chrome(cells, path, other_data={"seed": 7})
        assert written == len(synthetic_events()) + 2
        data = json.loads(open(path).read())  # Must be plain JSON.
        parsed_cells, other = parse_chrome(data)
        assert parsed_cells == cells
        assert other == {"seed": 7}

    def test_jsonl_chrome_cross_round_trip(self, tmp_path):
        """events -> JSONL -> Chrome -> events, losslessly."""
        jsonl_path = str(tmp_path / "events.jsonl")
        write_jsonl(synthetic_events(), jsonl_path)
        reread = read_jsonl(jsonl_path)
        cells, _ = parse_chrome(chrome_trace_dict([("cell", reread)]))
        assert cells == [("cell", synthetic_events())]

    def test_chrome_pid_tid_mapping(self):
        trace = chrome_trace_dict([("stock", synthetic_events())])
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert {e["pid"] for e in instants} == {1}
        # Simulated pid -1 (pre-scheduler kernel work) maps to tid 0.
        metadata = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = {(e["name"], e.get("args", {}).get("name"))
                 for e in metadata}
        assert ("process_name", "stock") in names
        assert ("thread_name", "kernel") in names


class TestAggregation:
    def test_counts_by_type(self):
        assert counts_by_type(synthetic_events()) == {
            "ctx_switch": 1, "page_fault": 1, "ptp_unshare": 1,
            "soft_fault": 1,
        }

    def test_fault_timelines_grouped_and_sorted(self):
        timelines = fault_timelines(synthetic_events())
        assert set(timelines) == {3}  # Only fault-like types, pid 3.
        entries = timelines[3]
        assert [e["etype"] for e in entries] == ["page_fault",
                                                 "soft_fault"]
        assert entries[0]["vaddr"] == 0x1000

    def test_time_histogram_buckets_cover_all_events(self):
        histogram = time_histogram(synthetic_events(), buckets=3)
        assert sum(histogram["counts"]) == len(synthetic_events())
        assert histogram["start"] == 0.0 and histogram["end"] == 9.0

    def test_time_histogram_empty_and_invalid(self):
        empty = time_histogram([], buckets=4)
        assert empty["counts"] == [0, 0, 0, 0]
        with pytest.raises(ValueError):
            time_histogram([], buckets=0)

    def test_time_histogram_single_event_stream(self):
        """A one-event span has zero width: the unit-width fallback
        must put the event in the first bucket, not divide by zero."""
        only = [TraceEvent(0, 5.0, EventType.PAGE_FAULT, pid=1,
                           vaddr=0x1000, cause="translation")]
        histogram = time_histogram(only, buckets=4)
        assert histogram["start"] == histogram["end"] == 5.0
        assert histogram["bucket_width"] == 1.0
        assert histogram["counts"] == [1, 0, 0, 0]
        assert sum(histogram["counts"]) == 1

    def test_ptp_region_geography(self):
        assert ptp_region(0x100) == "code/file"
        assert ptp_region(0x9000_0000 >> 21) == "anon"
        assert ptp_region(0xBE00_0000 >> 21) == "stack"

    def test_top_unshare_offenders_ranking(self):
        events = [
            TraceEvent(0, 0.0, EventType.PTP_UNSHARE, pid=1, ptp=7,
                       cause="write"),
            TraceEvent(1, 1.0, EventType.PTP_UNSHARE, pid=1, ptp=7,
                       cause="exit"),
            TraceEvent(2, 2.0, EventType.PTP_UNSHARE, pid=2, ptp=3,
                       cause="exit"),
            TraceEvent(3, 3.0, EventType.FORK, pid=1),  # Ignored.
        ]
        offenders = top_unshare_offenders(events)
        assert [o["ptp"] for o in offenders] == [7, 3]
        assert offenders[0]["unshares"] == 2
        assert offenders[0]["triggers"] == {"write": 1, "exit": 1}

    def test_top_unshare_offenders_empty_stream(self):
        assert top_unshare_offenders([]) == []
        # A stream with no PTP_UNSHARE events is as good as empty.
        assert top_unshare_offenders(
            [TraceEvent(0, 0.0, EventType.FORK, pid=1)]) == []

    def test_top_unshare_offenders_single_event_stream(self):
        only = [TraceEvent(0, 0.0, EventType.PTP_UNSHARE, pid=1, ptp=7,
                           cause="write")]
        offenders = top_unshare_offenders(only)
        assert len(offenders) == 1
        assert offenders[0]["ptp"] == 7
        assert offenders[0]["unshares"] == 1
        assert offenders[0]["triggers"] == {"write": 1}
        assert offenders[0]["region"] == ptp_region(7)


@pytest.mark.slow
class TestOrchestratedTrace:
    def test_serial_and_parallel_payloads_identical(self):
        """The orchestrator contract extends to trace cells: summaries,
        counters, agreement, and raw events match across executors."""
        serial = run_trace("fork", QUICK,
                           orchestrator=Orchestrator(jobs=1))
        parallel = run_trace("fork", QUICK,
                             orchestrator=Orchestrator(jobs=2))
        assert serial.payloads == parallel.payloads
        assert serial.all_agree

    def test_trace_cli_chrome_export(self, tmp_path):
        """The acceptance path: ``satr trace fork`` writes a Chrome
        trace whose per-cell event counts equal the run's counters."""
        from repro.experiments import runner

        out = tmp_path / "trace-fork.json"
        code = runner.trace_main([
            "fork", "--scale", "quick", "--format", "chrome",
            "-o", str(out), "--no-cache",
        ])
        assert code == 0
        data = json.loads(out.read_text())
        cells, other = parse_chrome(data)
        assert len(cells) == 2
        for label, events in cells:
            counts = counts_by_type(events)
            counters = other["counters"][label]
            assert counts.get("cow_unshare", 0) == counters["cow_faults"]
            assert counts.get("soft_fault", 0) == counters["soft_faults"]
            assert other["summaries"][label]["dropped"] == 0
