"""Property-based tests: random operation sequences must preserve the
kernel's structural invariants (see tests/invariants.py)."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.common.constants import PAGE_SIZE, PTP_SPAN
from repro.common.errors import VmaError
from repro.common.events import ifetch, load, store
from repro.common.perms import MapFlags, Prot
from tests.conftest import make_kernel
from tests.invariants import check_kernel_invariants

ANON = MapFlags.PRIVATE | MapFlags.ANONYMOUS

#: The playground: three 2MB slots of file-backed content, one of anon.
CODE_BASE = 0x4000_0000
DATA_BASE = 0x4020_0000
HEAP_BASE = 0x5000_0000
SPARE_BASE = 0x5020_0000


class SharingMachine(RuleBasedStateMachine):
    """Random fork/access/syscall/exit sequences on a shared-PTP kernel."""

    def __init__(self):
        super().__init__()
        self.kernel = make_kernel("shared-ptp")
        self.zygote = self.kernel.create_process("zygote")
        self.kernel.exec_zygote(self.zygote)
        file = self.kernel.page_cache.create_file("lib", 96)
        self.kernel.syscalls.mmap(
            self.zygote, 32 * PAGE_SIZE, Prot.READ | Prot.EXEC,
            MapFlags.PRIVATE, file=file, addr=CODE_BASE)
        self.kernel.syscalls.mmap(
            self.zygote, 16 * PAGE_SIZE, Prot.READ | Prot.WRITE,
            MapFlags.PRIVATE, file=file, file_page_offset=32,
            addr=DATA_BASE)
        self.kernel.syscalls.mmap(
            self.zygote, 32 * PAGE_SIZE, Prot.READ | Prot.WRITE, ANON,
            addr=HEAP_BASE)
        self.kernel.run(self.zygote, [ifetch(CODE_BASE),
                                      store(HEAP_BASE)])
        self.children = []
        self.spare_regions = []

    # -- rules ---------------------------------------------------------

    @rule()
    def fork_child(self):
        if len(self.children) >= 6:
            return
        child, _ = self.kernel.fork(self.zygote, f"c{len(self.children)}")
        self.children.append(child)

    def _any_task(self, index):
        pool = [self.zygote] + self.children
        return pool[index % len(pool)]

    @rule(index=st.integers(0, 6), page=st.integers(0, 31))
    def fetch_code(self, index, page):
        task = self._any_task(index)
        self.kernel.run(task, [ifetch(CODE_BASE + page * PAGE_SIZE)])

    @rule(index=st.integers(0, 6), page=st.integers(0, 15))
    def read_data(self, index, page):
        task = self._any_task(index)
        addr = DATA_BASE + page * PAGE_SIZE
        if task.mm.find_vma(addr) is None:
            return  # This task munmapped the page earlier.
        self.kernel.run(task, [load(addr)])

    @rule(index=st.integers(0, 6), page=st.integers(0, 15))
    def write_data(self, index, page):
        task = self._any_task(index)
        addr = DATA_BASE + page * PAGE_SIZE
        vma = task.mm.find_vma(addr)
        if vma is None or not vma.prot.writable:
            return
        self.kernel.run(task, [store(addr)])

    @rule(index=st.integers(0, 6), page=st.integers(0, 31))
    def write_heap(self, index, page):
        task = self._any_task(index)
        self.kernel.run(task, [store(HEAP_BASE + page * PAGE_SIZE)])

    @rule(index=st.integers(0, 6))
    def map_new_region_in_shared_slot(self, index):
        task = self._any_task(index)
        try:
            vma = self.kernel.syscalls.mmap(
                task, 2 * PAGE_SIZE, Prot.READ | Prot.WRITE, ANON,
                addr=SPARE_BASE)
        except VmaError:
            return  # Already mapped in this task.
        self.kernel.run(task, [store(vma.start)])

    @rule(index=st.integers(0, 6), pages=st.integers(1, 8))
    def munmap_data_prefix(self, index, pages):
        task = self._any_task(index)
        if task.mm.find_vma(DATA_BASE) is None:
            return
        self.kernel.syscalls.munmap(task, DATA_BASE, pages * PAGE_SIZE)

    @rule(index=st.integers(0, 6))
    def mprotect_heap_readonly(self, index):
        task = self._any_task(index)
        if task.mm.find_vma(HEAP_BASE) is None:
            return
        self.kernel.syscalls.mprotect(task, HEAP_BASE, 4 * PAGE_SIZE,
                                      Prot.READ)
        # Restore writability so later heap writes stay legal.
        self.kernel.syscalls.mprotect(task, HEAP_BASE, 4 * PAGE_SIZE,
                                      Prot.READ | Prot.WRITE)

    @rule()
    def exit_oldest_child(self):
        if not self.children:
            return
        child = self.children.pop(0)
        self.kernel.exit_task(child)

    # -- invariants ----------------------------------------------------

    @invariant()
    def kernel_consistent(self):
        check_kernel_invariants(self.kernel)


TestSharingMachine = SharingMachine.TestCase
TestSharingMachine.settings = settings(
    max_examples=25,
    stateful_step_count=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestInvariantsAfterScenarios:
    """Directed (non-random) end-to-end invariant checks."""

    def test_after_full_android_lifecycle(self):
        from repro.common.rng import DeterministicRng
        from repro.workloads.profiles import HELLOWORLD
        from repro.workloads.session import launch_app
        from tests.conftest import make_small_runtime

        runtime = make_small_runtime("shared-ptp")
        check_kernel_invariants(runtime.kernel)
        for round_index in range(2):
            session = launch_app(runtime, HELLOWORLD,
                                 DeterministicRng(1, "inv"),
                                 round_seed=round_index,
                                 revisit_passes=0)
            check_kernel_invariants(runtime.kernel)
            session.finish()
            check_kernel_invariants(runtime.kernel)

    def test_after_binder_benchmark(self):
        from repro.android.binder import BinderBenchmark, BinderConfig
        from tests.conftest import make_small_runtime

        runtime = make_small_runtime("shared-ptp-tlb")
        bench = BinderBenchmark(runtime, config=BinderConfig(
            invocations=10, warmup_invocations=2, binder_pages=8,
            server_framework_pages=4, client_private_pages=4,
            server_private_pages=8, noise_every=3, noise_pages=6,
            noise_colliding_pages=3))
        bench.run()
        check_kernel_invariants(runtime.kernel)

    @given(st.lists(st.sampled_from(["fork", "write", "exit"]),
                    min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_fork_write_exit_sequences(self, operations):
        kernel = make_kernel("shared-ptp")
        parent = kernel.create_process("parent")
        heap = kernel.syscalls.mmap(parent, 8 * PAGE_SIZE,
                                    Prot.READ | Prot.WRITE, ANON)
        kernel.run(parent, [store(heap.start)])
        children = []
        for op in operations:
            if op == "fork":
                child, _ = kernel.fork(parent, "c")
                children.append(child)
            elif op == "write" and children:
                kernel.run(children[-1], [store(heap.start)])
            elif op == "exit" and children:
                kernel.exit_task(children.pop())
            check_kernel_invariants(kernel)
