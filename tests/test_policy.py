"""The translation-policy subsystem: registry, hooks, the three
concrete policies, digest sensitivity and the ``satr compare`` matrix.

The load-bearing guarantees:

* the policy name is a real config field — unknown names are rejected
  at kernel construction, and two cells differing only in policy can
  never share a cache digest, while adding the field left every
  baseline digest untouched (pinned by a golden digest);
* victima's victim store obeys TLB maintenance parity and its
  park/revive ledger balances (the invariant checker enforces both);
* replicated-pt redirects remote-node walks and counts write-coherence
  traffic on every PTE-update path;
* ``satr compare`` produces byte-identical matrices serially, on a
  process pool, and out of a warm cache.
"""

from types import SimpleNamespace

import pytest

from repro.check import InvariantViolation, verify_kernel
from repro.common.constants import DOMAIN_KERNEL, PAGE_SIZE
from repro.common.errors import ConfigError
from repro.experiments import compare, fork
from repro.experiments.checking import check_cells, run_check
from repro.experiments.common import QUICK, build_runtime
from repro.hw.tlb import TlbEntry
from repro.kernel.config import shared_ptp_tlb_config
from repro.kernel.kernel import Kernel
from repro.metrics import Sampler
from repro.orchestrate import Orchestrator, ResultCache, kernel_config_fields
from repro.policy import (
    NULL_POLICY,
    TranslationPolicy,
    make_policy,
    policy_class,
    policy_names,
    register_policy,
    unregister_policy,
)
from repro.policy.replicated import NUM_NODES, REPLICA_STRIDE

#: table4/shared-ptp at quick scale, seed 7, version 1.3.0 — the exact
#: digest this cell had before the ``policy`` config field existed.
#: If this changes, every user's cached baseline results are orphaned.
GOLDEN_BASELINE_DIGEST = (
    "69109c14853d201b6e4f907a7fa859aa0b7605fb1a730d7a88940ca35582f4f4"
)


def _kernel(policy: str) -> Kernel:
    return Kernel(config=shared_ptp_tlb_config().with_(policy=policy))


def _entry(vpn, asid=5, pfn=777, writable=False, global_=False,
           domain=1, span_pages=1) -> TlbEntry:
    return TlbEntry(vpn=vpn, asid=asid, pfn=pfn, writable=writable,
                    global_=global_, domain=domain,
                    span_pages=span_pages)


# ---------------------------------------------------------------------------
# Registry + config plumbing.
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_builtin_policies_registered(self):
        names = policy_names()
        for name in ("baseline", "victima", "replicated-pt",
                     "nodomain-flush"):
            assert name in names

    def test_unknown_policy_is_config_error(self):
        with pytest.raises(ConfigError, match="unknown translation policy"):
            policy_class("nope")
        with pytest.raises(ConfigError):
            Kernel(config=shared_ptp_tlb_config().with_(policy="nope"))

    def test_register_and_unregister(self):
        class FakePolicy(TranslationPolicy):
            name = "fake-for-test"
            active = True

        register_policy(FakePolicy)
        try:
            assert "fake-for-test" in policy_names()
            assert policy_class("fake-for-test") is FakePolicy
            kernel = _kernel("fake-for-test")
            assert isinstance(kernel.policy, FakePolicy)
        finally:
            unregister_policy("fake-for-test")
        assert "fake-for-test" not in policy_names()

    def test_baseline_is_inert_with_nonempty_counters(self):
        kernel = Kernel()
        assert kernel.config.policy == "baseline"
        assert not kernel.policy.active
        assert kernel.policy.event_counts() == {"none": 0}
        assert not NULL_POLICY.active

    def test_implied_config_applied_at_construction(self):
        kernel = _kernel("nodomain-flush")
        assert kernel.config.domain_support is False
        assert kernel.policy.active

    def test_make_policy_binds_kernel(self):
        kernel = Kernel()
        policy = make_policy("victima", kernel)
        assert policy.kernel is kernel and policy.name == "victima"


# ---------------------------------------------------------------------------
# Victima: park / revive / stale / maintenance parity.
# ---------------------------------------------------------------------------

class TestVictima:
    def test_evicted_entry_is_parked_and_revived(self):
        kernel = _kernel("victima")
        policy = kernel.policy
        core = kernel.platform.cores[0]
        entry = _entry(vpn=0x123)
        policy.on_tlb_evict(core, entry)
        assert policy.counters["parked"] == 1
        revived, stall = policy.tlb_miss_probe(
            core, SimpleNamespace(asid=5), 0x123)
        assert revived is entry
        assert stall == core.caches.cost.l2_hit_stall
        assert policy.counters["revived"] == 1
        # Revival reinserts into the main TLB.
        assert entry in core.main_tlb.entries()
        assert policy.parked_entries() == []

    def test_wrong_asid_does_not_revive_non_global(self):
        kernel = _kernel("victima")
        policy = kernel.policy
        core = kernel.platform.cores[0]
        policy.on_tlb_evict(core, _entry(vpn=0x123, asid=5))
        assert policy.tlb_miss_probe(
            core, SimpleNamespace(asid=6), 0x123) == (None, 0)
        assert policy.counters["revived"] == 0
        assert len(policy.parked_entries()) == 1

    def test_global_entry_revives_across_asids(self):
        kernel = _kernel("victima")
        policy = kernel.policy
        core = kernel.platform.cores[0]
        entry = _entry(vpn=0x200, asid=5, global_=True)
        policy.on_tlb_evict(core, entry)
        revived, _ = policy.tlb_miss_probe(
            core, SimpleNamespace(asid=99), 0x200)
        assert revived is entry

    def test_large_span_probe_aliasing(self):
        kernel = _kernel("victima")
        policy = kernel.policy
        core = kernel.platform.cores[0]
        entry = _entry(vpn=0x340, span_pages=16)
        policy.on_tlb_evict(core, entry)
        revived, _ = policy.tlb_miss_probe(
            core, SimpleNamespace(asid=5), 0x347)
        assert revived is entry

    def test_l2_eviction_makes_parked_entry_stale(self):
        kernel = _kernel("victima")
        policy = kernel.policy
        core = kernel.platform.cores[0]
        l2 = kernel.platform.shared_l2
        entry = _entry(vpn=0x123)
        policy.on_tlb_evict(core, entry)
        line = policy._line_paddr(entry) >> l2.line_shift
        # Fill the parked line's set with conflicting lines until the
        # synthetic line is evicted: the translation went with it.
        for k in range(1, l2.ways + 1):
            l2.access((line + k * l2.num_sets) << l2.line_shift)
        assert not l2.contains(policy._line_paddr(entry))
        assert policy.tlb_miss_probe(
            core, SimpleNamespace(asid=5), 0x123) == (None, 0)
        assert policy.counters["stale"] == 1
        assert policy.counters["revived"] == 0

    def test_flush_parity_with_main_tlb(self):
        kernel = _kernel("victima")
        policy = kernel.policy
        core = kernel.platform.cores[0]
        non_global = _entry(vpn=0x1, asid=5)
        global_ = _entry(vpn=0x2, asid=5, global_=True)
        other_asid = _entry(vpn=0x3, asid=6)
        for entry in (non_global, global_, other_asid):
            policy.on_tlb_evict(core, entry)

        policy.on_tlb_flush("asid", asid=6)
        assert other_asid not in policy.parked_entries()
        policy.on_tlb_flush("non-global")
        assert policy.parked_entries() == [global_]
        policy.on_tlb_flush("all")
        assert policy.parked_entries() == []
        assert policy.counters["flushed"] == 3

    def test_va_flush_covers_large_spans(self):
        kernel = _kernel("victima")
        policy = kernel.policy
        core = kernel.platform.cores[0]
        policy.on_tlb_evict(core, _entry(vpn=0x340, span_pages=16))
        policy.on_tlb_flush("va", vpn=0x34f)
        assert policy.parked_entries() == []

    def test_ledger_invariant_catches_tampering(self):
        kernel = _kernel("victima")
        policy = kernel.policy
        assert list(policy.check_invariants()) == []
        policy.counters["parked"] += 5
        problems = list(policy.check_invariants())
        assert problems and "accounting" in problems[0]


# ---------------------------------------------------------------------------
# Replicated page tables: walk redirection + write coherence.
# ---------------------------------------------------------------------------

class TestReplicatedPt:
    def test_remote_node_walks_are_redirected(self):
        kernel = _kernel("replicated-pt")
        policy = kernel.policy
        core = kernel.platform.cores[0]
        local = SimpleNamespace(asid=2)   # node 0
        remote = SimpleNamespace(asid=3)  # node 1
        assert policy.pte_walk_paddr(core, local, None, 0, 0x1000) == 0x1000
        assert policy.pte_walk_paddr(core, remote, None, 0, 0x1000) == (
            0x1000 + REPLICA_STRIDE)
        assert policy.counters["replica-walk"] == 1

    def test_every_pte_update_path_counts_coherence(self):
        kernel = _kernel("replicated-pt")
        policy = kernel.policy
        step = NUM_NODES - 1
        policy.on_pte_write(None, 0)
        assert policy.counters["replica-sync"] == step
        policy.on_ptp_share(None, protected=10)
        assert policy.counters["replica-sync"] == step * 11
        policy.on_ptp_unshare(None, "mprotect", copied=4)
        assert policy.counters["replica-sync"] == step * 15
        assert list(policy.check_invariants()) == []

    def test_replica_bytes_counts_distinct_frames(self):
        runtime = build_runtime("shared-ptp-tlb", policy="replicated-pt")
        policy = runtime.kernel.policy
        frames = {
            slot.ptp.frame.pfn
            for task in runtime.kernel.live_tasks()
            for _, slot in task.mm.tables.populated_slots()
        }
        expected = (NUM_NODES - 1) * len(frames) * PAGE_SIZE
        assert policy.replica_bytes() == expected
        assert policy.gauges()["replica-bytes"] == expected


# ---------------------------------------------------------------------------
# Kernel wiring: policies observe a real booted workload.
# ---------------------------------------------------------------------------

class TestKernelWiring:
    def test_victima_observes_boot_traffic(self):
        runtime = build_runtime("shared-ptp-tlb", policy="victima")
        policy = runtime.kernel.policy
        assert policy.counters["parked"] > 0
        assert list(policy.check_invariants()) == []

    def test_replicated_observes_boot_traffic(self):
        runtime = build_runtime("shared-ptp-tlb", policy="replicated-pt")
        counters = runtime.kernel.policy.counters
        assert counters["replica-walk"] > 0
        assert counters["replica-sync"] > 0

    def test_metrics_sampler_exposes_policy_events(self):
        sampler = Sampler(every_events=0)
        runtime = build_runtime("shared-ptp-tlb", metrics=sampler,
                                policy="victima")
        sampler.finalize(runtime.kernel)
        series = sampler.final_values()["satr_policy_events_total"]
        assert series["parked"] > 0
        assert set(series) == set(runtime.kernel.policy.counters)

    def test_baseline_metrics_have_a_policy_sample(self):
        sampler = Sampler(every_events=0)
        runtime = build_runtime("shared-ptp", metrics=sampler)
        sampler.finalize(runtime.kernel)
        assert sampler.final_values()["satr_policy_events_total"] == {
            "none": 0}


# ---------------------------------------------------------------------------
# Invariant checker integration.
# ---------------------------------------------------------------------------

class TestCheckerIntegration:
    def test_tampered_ledger_fails_verify_kernel(self):
        kernel = _kernel("victima")
        verify_kernel(kernel)
        kernel.policy.counters["parked"] += 1
        with pytest.raises(InvariantViolation, match="victim-store"):
            verify_kernel(kernel)

    def test_bogus_shadow_entry_fails_verify_kernel(self):
        kernel = _kernel("victima")
        core = kernel.platform.cores[0]
        # A kernel-domain shadow entry that breaks the linear map is
        # exactly the corruption TLB coherence would catch in a TLB.
        kernel.policy.on_tlb_evict(
            core, _entry(vpn=0x10, pfn=0xdead, domain=DOMAIN_KERNEL,
                         global_=True))
        with pytest.raises(InvariantViolation, match="linear map"):
            verify_kernel(kernel)

    def test_check_cells_thread_policy_to_sharing_cell_only(self):
        cells = check_cells("fork", QUICK, policy="victima")
        sharing, stock = cells
        assert sharing.params["policy"] == "victima"
        assert sharing.cell_id.endswith("@victima")
        assert "policy" not in stock.params
        baseline_cells = check_cells("fork", QUICK)
        assert baseline_cells[0].cell_id == sharing.cell_id.replace(
            "@victima", "")

    @pytest.mark.slow
    @pytest.mark.parametrize("policy", ["victima", "replicated-pt",
                                        "nodomain-flush"])
    def test_check_runs_clean_under_policy(self, policy, tmp_path):
        orchestrator = Orchestrator(
            cache=ResultCache(str(tmp_path / "cache")))
        result = run_check("fork", QUICK, orchestrator=orchestrator,
                           policy=policy)
        assert result.ok, result.render()


# ---------------------------------------------------------------------------
# Cache-digest sensitivity.
# ---------------------------------------------------------------------------

class TestDigestSensitivity:
    def test_policy_enters_the_digest(self):
        baseline = fork.table4_cells(QUICK, 7)
        victima = fork.table4_cells(QUICK, 7, policy="victima")
        for base_cell, policy_cell in zip(baseline, victima):
            assert base_cell.digest() != policy_cell.digest()

    def test_baseline_digest_matches_pre_policy_golden(self):
        cell = fork.table4_cells(QUICK, 7)[0]
        assert cell.name == "table4/shared-ptp"
        assert cell.digest() == GOLDEN_BASELINE_DIGEST

    def test_config_fields_omit_default_policy(self):
        assert "policy" not in kernel_config_fields("shared-ptp")
        fields = kernel_config_fields("shared-ptp", policy="victima")
        assert fields["policy"] == "victima"

    def test_distinct_policies_key_distinct_compare_cells(self):
        cells = compare.compare_cells(["fork"], list(policy_names()),
                                      QUICK, 7)
        digests = {cell.digest() for cell in cells}
        assert len(digests) == len(cells)


# ---------------------------------------------------------------------------
# The satr compare matrix.
# ---------------------------------------------------------------------------

class TestCompare:
    def test_plan_shape_and_params(self):
        cells = compare.compare_cells(["fork", "launch"],
                                      ["baseline", "victima"], QUICK, 7)
        assert [c.name for c in cells] == [
            "compare-fork/baseline", "compare-fork/victima",
            "compare-launch/baseline", "compare-launch/victima",
        ]
        for cell in cells:
            assert cell.params["policy"] in ("baseline", "victima")
            assert cell.params["config"] == compare.COMPARE_CONFIGS[
                cell.params["target"]]

    def test_unknown_axes_fail_before_planning(self):
        with pytest.raises(KeyError, match="unknown compare target"):
            compare.compare_cells(["nope"], ["baseline"], QUICK, 7)
        with pytest.raises(ConfigError, match="unknown translation"):
            compare.compare_cells(["fork"], ["nope"], QUICK, 7)

    @pytest.mark.slow
    def test_matrix_ranked_and_policies_disagree(self, tmp_path):
        orchestrator = Orchestrator(
            cache=ResultCache(str(tmp_path / "cache")))
        result = compare.run_compare(
            ["fork"], ["baseline", "replicated-pt"], QUICK,
            orchestrator=orchestrator)
        assert result.ok
        ranked = result.rows_for("fork")
        walks = [row["gauges"]["walk_cycles"] for row in ranked]
        assert walks == sorted(walks)
        # Replication pays real costs the baseline does not.
        assert "pagetable_bytes" in result.disagreements("fork")
        rendered = result.render()
        assert "ranked by walk cycles" in rendered
        assert "replicated-pt" in rendered

    @pytest.mark.slow
    def test_serial_pool_and_cache_byte_identical(self, tmp_path):
        serial = compare.run_compare(
            ["fork"], ["baseline", "victima"], QUICK,
            orchestrator=Orchestrator(
                cache=ResultCache(str(tmp_path / "a"))))
        pooled = compare.run_compare(
            ["fork"], ["baseline", "victima"], QUICK,
            orchestrator=Orchestrator(
                jobs=2, cache=ResultCache(str(tmp_path / "b"))))
        assert serial.to_json() == pooled.to_json()
        assert serial.render() == pooled.render()
        # Warm replay out of the serial run's cache: all hits, same bytes.
        from repro.orchestrate import Telemetry

        telemetry = Telemetry()
        replayed = compare.run_compare(
            ["fork"], ["baseline", "victima"], QUICK,
            orchestrator=Orchestrator(
                cache=ResultCache(str(tmp_path / "a")),
                telemetry=telemetry))
        assert telemetry.hits == 2 and telemetry.misses == 0
        assert replayed.to_json() == serial.to_json()
