"""Zygote boot: the paper's calibration targets and structural invariants.

The full-calibration tests use the session-scoped runtime; they verify
the exact numbers Table 4 depends on (see DESIGN.md section 4).
"""

import pytest

from repro.common.constants import PAGE_SIZE, ptp_index
from repro.android.layout import LayoutMode
from repro.android.zygote import ZygoteCalibration
from repro.hw.pagetable import Pte
from tests.conftest import make_small_runtime


class TestFullCalibration:
    """Against the paper's Section 4.2.1 zygote numbers."""

    def test_dso_instruction_ptes(self, full_runtime_readonly):
        assert full_runtime_readonly.report.dso_code_ptes == 5900

    def test_anonymous_ptes(self, full_runtime_readonly):
        assert full_runtime_readonly.report.anon_ptes == 3900

    def test_stack_ptes(self, full_runtime_readonly):
        assert full_runtime_readonly.report.stack_ptes == 7

    def test_anon_slots_for_stock_fork(self, full_runtime_readonly):
        # Stock fork allocates one child PTP per anon-bearing slot: 38.
        assert full_runtime_readonly.report.anon_slots == 38

    def test_total_populated_slots(self, full_runtime_readonly):
        # 81 shareable + the stack slot.
        assert full_runtime_readonly.report.populated_slots == 82

    def test_hot_ranking_covers_all_code(self, full_runtime_readonly):
        runtime = full_runtime_readonly
        expected = sum(len(pages) for pages in
                       runtime.touched_code_pages.values())
        assert len(runtime.code_hot_ranking) == expected
        assert len(set(runtime.code_hot_ranking)) == expected


class TestSmallRuntimeStructure:
    def test_every_mapped_object_present(self):
        runtime = make_small_runtime()
        assert "app_process" in runtime.mapped
        assert "boot.oat" in runtime.mapped
        assert "boot.art" in runtime.mapped
        assert len(runtime.mapped) >= 88 + 3 + 4

    def test_touched_pages_have_valid_ptes(self):
        runtime = make_small_runtime()
        tables = runtime.zygote.mm.tables
        for name, pages in runtime.touched_code_pages.items():
            for addr in pages[:3]:
                found = tables.lookup_pte(addr)
                assert found is not None, f"{name}:{addr:#x}"
                assert Pte.is_valid(found[2])

    def test_anon_and_file_slots_disjoint(self):
        """Anonymous regions must not share 2MB slots with file content
        (keeps the paper's 38-slot anon accounting clean)."""
        runtime = make_small_runtime()
        anon_slots = set()
        for vma in (runtime.java_heap, runtime.native_heap,
                    runtime.misc_anon, runtime.stack):
            for addr in range(vma.start, vma.end, PAGE_SIZE):
                anon_slots.add(ptp_index(addr))
        file_slots = set()
        for mapped in runtime.mapped.values():
            for vma in (mapped.code_vma, mapped.data_vma):
                if vma is None:
                    continue
                for addr in range(vma.start, vma.end, PAGE_SIZE):
                    file_slots.add(ptp_index(addr))
        assert not anon_slots & file_slots

    def test_preloaded_flag_only_on_dsos(self):
        runtime = make_small_runtime()
        assert runtime.mapped["libc.so"].code_vma.zygote_preloaded
        assert not runtime.mapped["boot.oat"].code_vma.zygote_preloaded
        assert not runtime.mapped["app_process"].code_vma.zygote_preloaded

    def test_zygote_flags(self):
        runtime = make_small_runtime()
        assert runtime.zygote.is_zygote
        assert not runtime.zygote.is_zygote_child

    def test_fork_app_produces_zygote_child(self):
        runtime = make_small_runtime()
        child, _ = runtime.fork_app("app")
        assert child.is_zygote_child
        assert child.parent is runtime.zygote

    def test_global_marking_follows_config(self):
        with_tlb = make_small_runtime("shared-ptp-tlb")
        assert with_tlb.mapped["libc.so"].code_vma.global_
        without = make_small_runtime("shared-ptp")
        assert not without.mapped["libc.so"].code_vma.global_

    def test_2mb_mode_layout(self):
        runtime = make_small_runtime(mode=LayoutMode.ALIGNED_2MB)
        mapped = runtime.mapped["libc.so"]
        assert mapped.code_start % (2 << 20) == 0
        assert ptp_index(mapped.code_start) != ptp_index(mapped.data_start)

    def test_determinism_across_boots(self):
        a = make_small_runtime()
        b = make_small_runtime()
        assert a.code_hot_ranking == b.code_hot_ranking
        assert a.report.dso_code_ptes == b.report.dso_code_ptes

    def test_small_calibration_totals(self):
        runtime = make_small_runtime()
        calibration = ZygoteCalibration.small()
        assert runtime.report.dso_code_ptes == calibration.dso_code_ptes
        assert runtime.report.stack_ptes == calibration.stack_ptes
