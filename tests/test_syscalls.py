"""mmap / munmap / mprotect semantics."""

import pytest

from repro.common.constants import PAGE_SIZE, PTP_SPAN
from repro.common.errors import VmaError
from repro.common.events import ifetch, load, store
from repro.common.perms import MapFlags, Prot
from repro.hw.memory import FrameKind
from repro.hw.pagetable import Pte
from tests.conftest import make_kernel

ANON = MapFlags.PRIVATE | MapFlags.ANONYMOUS


@pytest.fixture
def env():
    kernel = make_kernel("shared-ptp")
    task = kernel.create_process("proc")
    return kernel, task


class TestMmap:
    def test_length_rounded_to_pages(self, env):
        kernel, task = env
        vma = kernel.syscalls.mmap(task, 100, Prot.READ, ANON)
        assert vma.num_pages == 1

    def test_explicit_address_honoured(self, env):
        kernel, task = env
        vma = kernel.syscalls.mmap(task, PAGE_SIZE, Prot.READ, ANON,
                                   addr=0x50000000)
        assert vma.start == 0x50000000

    def test_alignment_honoured(self, env):
        kernel, task = env
        vma = kernel.syscalls.mmap(task, PAGE_SIZE, Prot.READ, ANON,
                                   alignment=PTP_SPAN)
        assert vma.start % PTP_SPAN == 0

    def test_overlap_rejected(self, env):
        kernel, task = env
        kernel.syscalls.mmap(task, PAGE_SIZE, Prot.READ, ANON,
                             addr=0x50000000)
        with pytest.raises(VmaError):
            kernel.syscalls.mmap(task, PAGE_SIZE, Prot.READ, ANON,
                                 addr=0x50000000)

    def test_syscall_cost_charged(self, env):
        kernel, task = env
        before = task.stats.syscall_cycles
        kernel.syscalls.mmap(task, PAGE_SIZE, Prot.READ, ANON)
        assert task.stats.syscall_cycles > before


class TestMunmap:
    def test_clears_ptes_and_drops_frames(self, env):
        kernel, task = env
        vma = kernel.syscalls.mmap(task, 4 * PAGE_SIZE,
                                   Prot.READ | Prot.WRITE, ANON)
        kernel.run(task, [store(vma.start + i * PAGE_SIZE)
                          for i in range(4)])
        anon_before = kernel.memory.live_frames(FrameKind.ANON)
        cleared = kernel.syscalls.munmap(task, vma.start, 4 * PAGE_SIZE)
        assert cleared == 4
        assert task.mm.find_vma(vma.start) is None
        assert kernel.memory.live_frames(FrameKind.ANON) == anon_before - 4

    def test_partial_munmap_splits(self, env):
        kernel, task = env
        vma = kernel.syscalls.mmap(task, 8 * PAGE_SIZE, Prot.READ, ANON,
                                   addr=0x50000000)
        kernel.syscalls.munmap(task, vma.start + 2 * PAGE_SIZE,
                               2 * PAGE_SIZE)
        assert task.mm.find_vma(vma.start) is not None
        assert task.mm.find_vma(vma.start + 2 * PAGE_SIZE) is None
        assert task.mm.find_vma(vma.start + 4 * PAGE_SIZE) is not None

    def test_munmap_of_file_mapping_keeps_page_cache(self, env):
        kernel, task = env
        file = kernel.page_cache.create_file("lib", 4)
        vma = kernel.syscalls.mmap(task, 4 * PAGE_SIZE, Prot.READ,
                                   MapFlags.PRIVATE, file=file)
        kernel.run(task, [load(vma.start)])
        kernel.syscalls.munmap(task, vma.start, 4 * PAGE_SIZE)
        assert kernel.page_cache.lookup(file, 0) is not None

    def test_munmap_flushes_tlb(self, env):
        kernel, task = env
        vma = kernel.syscalls.mmap(task, PAGE_SIZE,
                                   Prot.READ | Prot.WRITE, ANON)
        kernel.run(task, [store(vma.start)])
        core = kernel.platform.cores[0]
        assert core.main_tlb.lookup(vma.start >> 12, task.asid) is not None
        kernel.syscalls.munmap(task, vma.start, PAGE_SIZE)
        assert core.main_tlb.lookup(vma.start >> 12, task.asid) is None


class TestMprotect:
    def test_removing_write_protects_ptes(self, env):
        kernel, task = env
        vma = kernel.syscalls.mmap(task, 2 * PAGE_SIZE,
                                   Prot.READ | Prot.WRITE, ANON)
        kernel.run(task, [store(vma.start)])
        kernel.syscalls.mprotect(task, vma.start, 2 * PAGE_SIZE, Prot.READ)
        inner = task.mm.find_vma(vma.start)
        assert inner.prot == Prot.READ
        pte = task.mm.tables.lookup_pte(vma.start)[2]
        assert not Pte.is_writable(pte)

    def test_partial_mprotect_splits_vma(self, env):
        kernel, task = env
        vma = kernel.syscalls.mmap(task, 8 * PAGE_SIZE,
                                   Prot.READ | Prot.WRITE, ANON,
                                   addr=0x50000000)
        kernel.syscalls.mprotect(task, vma.start + 2 * PAGE_SIZE,
                                 2 * PAGE_SIZE, Prot.READ)
        assert task.mm.find_vma(vma.start).prot.writable
        assert not task.mm.find_vma(vma.start + 2 * PAGE_SIZE).prot.writable
        assert task.mm.find_vma(vma.start + 4 * PAGE_SIZE).prot.writable

    def test_unmapped_range_rejected(self, env):
        kernel, task = env
        with pytest.raises(VmaError):
            kernel.syscalls.mprotect(task, 0x50000000, PAGE_SIZE, Prot.READ)

    def test_write_after_adding_write_permission(self, env):
        kernel, task = env
        vma = kernel.syscalls.mmap(task, PAGE_SIZE, Prot.READ, ANON)
        kernel.run(task, [load(vma.start)])
        kernel.syscalls.mprotect(task, vma.start, PAGE_SIZE,
                                 Prot.READ | Prot.WRITE)
        kernel.run(task, [store(vma.start)])  # Must not segfault.
        assert task.counters.cow_faults == 1  # Zero-page COW.
