"""VMAs and the mm_struct address-space bookkeeping."""

import pytest
from hypothesis import given, strategies as st

from repro.common.constants import PAGE_SIZE, PTP_SPAN
from repro.common.errors import VmaError
from repro.common.perms import MapFlags, Prot
from repro.hw.memory import PhysicalMemory
from repro.kernel.mm import MmStruct
from repro.kernel.pagecache import PageCache
from repro.kernel.vma import Vma

ANON = MapFlags.PRIVATE | MapFlags.ANONYMOUS


def anon_vma(start, pages, prot=Prot.READ | Prot.WRITE, flags=ANON):
    return Vma(start=start, end=start + pages * PAGE_SIZE, prot=prot,
               flags=flags)


class TestVmaValidation:
    def test_rejects_unaligned(self):
        with pytest.raises(VmaError):
            Vma(start=10, end=PAGE_SIZE, prot=Prot.READ, flags=ANON)

    def test_rejects_empty(self):
        with pytest.raises(VmaError):
            Vma(start=PAGE_SIZE, end=PAGE_SIZE, prot=Prot.READ, flags=ANON)

    def test_rejects_file_with_anonymous_flag(self):
        memory = PhysicalMemory()
        file = PageCache(memory).create_file("f", 4)
        with pytest.raises(VmaError):
            Vma(start=0, end=PAGE_SIZE, prot=Prot.READ, flags=ANON,
                file=file)

    def test_rejects_file_flag_without_file(self):
        with pytest.raises(VmaError):
            Vma(start=0, end=PAGE_SIZE, prot=Prot.READ,
                flags=MapFlags.PRIVATE)


class TestVmaGeometry:
    def test_contains_and_pages(self):
        vma = anon_vma(0x40000000, 4)
        assert vma.num_pages == 4
        assert vma.contains(0x40000000)
        assert vma.contains(0x40003FFF)
        assert not vma.contains(0x40004000)

    def test_overlaps(self):
        vma = anon_vma(0x40000000, 4)
        assert vma.overlaps(0x40003000, 0x40005000)
        assert not vma.overlaps(0x40004000, 0x40005000)

    def test_file_page_of(self):
        memory = PhysicalMemory()
        file = PageCache(memory).create_file("f", 32)
        vma = Vma(start=0x40000000, end=0x40004000,
                  prot=Prot.READ, flags=MapFlags.PRIVATE, file=file,
                  file_page_offset=10)
        assert vma.file_page_of(0x40000000) == 10
        assert vma.file_page_of(0x40002000) == 12

    def test_is_private_writable(self):
        assert anon_vma(0, 1).is_private_writable
        assert not anon_vma(0, 1, prot=Prot.READ).is_private_writable

    def test_is_stack(self):
        stack = anon_vma(0, 1, flags=ANON | MapFlags.GROWSDOWN)
        assert stack.is_stack


class TestVmaSplitClone:
    def test_split_preserves_coverage_and_offsets(self):
        memory = PhysicalMemory()
        file = PageCache(memory).create_file("f", 32)
        vma = Vma(start=0x40000000, end=0x40008000, prot=Prot.READ,
                  flags=MapFlags.PRIVATE, file=file, file_page_offset=4)
        left, right = vma.split_at(0x40003000)
        assert left.end == right.start == 0x40003000
        assert left.file_page_of(left.end - PAGE_SIZE) + 1 == (
            right.file_page_of(right.start)
        )

    def test_split_partitions_anon_pages(self):
        vma = anon_vma(0x40000000, 8)
        vma.anon_pages.update({0x40000, 0x40004})  # vpns.
        left, right = vma.split_at(0x40004000)
        assert left.anon_pages == {0x40000}
        assert right.anon_pages == {0x40004}

    def test_split_bounds_checked(self):
        vma = anon_vma(0x40000000, 4)
        with pytest.raises(VmaError):
            vma.split_at(0x40000000)
        with pytest.raises(VmaError):
            vma.split_at(0x40000800)

    def test_clone_deep_copies_anon_pages(self):
        vma = anon_vma(0x40000000, 2)
        vma.anon_pages.add(1)
        copy = vma.clone()
        copy.anon_pages.add(2)
        assert vma.anon_pages == {1}


class TestMmStruct:
    def make_mm(self):
        return MmStruct(PhysicalMemory(), owner_pid=1)

    def test_insert_and_find(self):
        mm = self.make_mm()
        vma = mm.insert_vma(anon_vma(0x40000000, 4))
        assert mm.find_vma(0x40000000) is vma
        assert mm.find_vma(0x40003FFF) is vma
        assert mm.find_vma(0x40004000) is None
        assert mm.find_vma(0x3FFFFFFF) is None

    def test_overlap_rejected(self):
        mm = self.make_mm()
        mm.insert_vma(anon_vma(0x40000000, 4))
        with pytest.raises(VmaError):
            mm.insert_vma(anon_vma(0x40002000, 4))

    def test_kernel_space_rejected(self):
        mm = self.make_mm()
        with pytest.raises(VmaError):
            mm.insert_vma(anon_vma(0xBFFFF000, 2))

    def test_find_intersecting_ordered(self):
        mm = self.make_mm()
        a = mm.insert_vma(anon_vma(0x40000000, 2))
        b = mm.insert_vma(anon_vma(0x40004000, 2))
        mm.insert_vma(anon_vma(0x40010000, 2))
        found = mm.find_intersecting(0x40001000, 0x40005000)
        assert found == [a, b]

    def test_carve_range_splits_straddlers(self):
        mm = self.make_mm()
        mm.insert_vma(anon_vma(0x40000000, 8))
        removed = mm.carve_range(0x40002000, 0x40005000)
        assert len(removed) == 1
        assert removed[0].start == 0x40002000
        assert removed[0].end == 0x40005000
        # The outside parts remain mapped.
        assert mm.find_vma(0x40000000) is not None
        assert mm.find_vma(0x40002000) is None
        assert mm.find_vma(0x40005000) is not None

    def test_get_unmapped_area_first_fit(self):
        mm = self.make_mm()
        first = mm.get_unmapped_area(4 * PAGE_SIZE)
        mm.insert_vma(anon_vma(first, 4))
        second = mm.get_unmapped_area(4 * PAGE_SIZE)
        assert second >= first + 4 * PAGE_SIZE

    def test_get_unmapped_area_alignment(self):
        mm = self.make_mm()
        addr = mm.get_unmapped_area(PAGE_SIZE, alignment=PTP_SPAN)
        assert addr % PTP_SPAN == 0

    def test_pgd_entry_paddrs_distinct(self):
        mm = self.make_mm()
        paddrs = {mm.pgd_entry_paddr(i) for i in (0, 1, 511, 512, 2047)}
        assert len(paddrs) == 5

    def test_vmas_in_slot(self):
        mm = self.make_mm()
        vma = mm.insert_vma(anon_vma(0x40000000, 4))
        slot = mm.tables.slot_index(0x40000000)
        assert mm.vmas_in_slot(slot) == [vma]

    @given(st.lists(st.tuples(st.integers(0, 200), st.integers(1, 8)),
                    max_size=30))
    def test_mapped_pages_accounting(self, regions):
        mm = self.make_mm()
        expected = 0
        for slot, pages in regions:
            start = 0x40000000 + slot * PTP_SPAN
            try:
                mm.insert_vma(anon_vma(start, pages))
                expected += pages
            except VmaError:
                pass  # Overlap with a previous region: skipped.
        assert mm.total_mapped_pages() == expected
