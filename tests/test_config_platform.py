"""Kernel configuration, cost model, platform assembly, CPU stats."""

import pytest

from repro.common.cost import CostModel, DEFAULT_COST_MODEL
from repro.common.errors import ConfigError
from repro.hw.cpu import Core, CycleStats
from repro.hw.platform import HardwareConfig, Platform
from repro.kernel.config import (
    ForkPolicy,
    KernelConfig,
    copy_pte_config,
    shared_ptp_config,
    shared_ptp_tlb_config,
    stock_config,
)


class TestKernelConfig:
    def test_factories(self):
        assert stock_config().fork_policy is ForkPolicy.STOCK
        assert copy_pte_config().fork_policy is ForkPolicy.COPY_PTE
        assert shared_ptp_config().shares_ptps
        assert shared_ptp_tlb_config().share_tlb

    def test_with_returns_modified_copy(self):
        base = stock_config()
        modified = base.with_(asid_enabled=False)
        assert base.asid_enabled and not modified.asid_enabled

    def test_invalid_combination_tlb_on_copy_pte(self):
        config = copy_pte_config().with_(share_tlb=True)
        with pytest.raises(ConfigError):
            config.validate()

    def test_referenced_only_requires_shared(self):
        config = stock_config().with_(unshare_copy_referenced_only=True)
        with pytest.raises(ConfigError):
            config.validate()

    def test_default_validates(self):
        KernelConfig().validate()


class TestCostModel:
    def test_soft_fault_anchor(self):
        """The paper's LMbench measurement: ~2,700 cycles per soft
        fault on the Nexus 7."""
        assert DEFAULT_COST_MODEL.soft_fault_total == pytest.approx(
            2700, rel=0.05
        )

    def test_fork_ordering_of_constants(self):
        cost = CostModel()
        assert cost.ptp_share_ref < cost.ptp_alloc
        assert cost.pte_write_protect < cost.pte_copy

    def test_memory_slower_than_l2(self):
        cost = CostModel()
        assert cost.memory_stall > cost.l2_hit_stall > 0


class TestPlatform:
    def test_default_is_nexus7_shaped(self):
        platform = Platform()
        assert len(platform.cores) == 4
        assert platform.cores[0].main_tlb.num_sets * 2 == 128
        assert platform.shared_l2.num_sets == 1024 * 1024 // (8 * 32)
        # All cores share one L2.
        assert all(core.caches.l2 is platform.shared_l2
                   for core in platform.cores)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            Platform(HardwareConfig(num_cores=0))
        with pytest.raises(ConfigError):
            Platform(HardwareConfig(main_tlb_entries=127))

    def test_flush_all_tlbs(self):
        platform = Platform()
        from repro.hw.tlb import TlbEntry
        platform.cores[2].main_tlb.insert(TlbEntry(
            vpn=1, asid=1, pfn=1, writable=False, global_=False, domain=1))
        platform.flush_all_tlbs()
        assert platform.cores[2].main_tlb.occupancy() == 0

    def test_flush_va_across_cores(self):
        platform = Platform()
        from repro.hw.tlb import TlbEntry
        for core in platform.cores[:2]:
            core.main_tlb.insert(TlbEntry(
                vpn=7, asid=1, pfn=1, writable=False, global_=True,
                domain=1))
        assert platform.flush_tlb_va_all_cores(7) == 2


class TestCycleStats:
    def test_charge_accumulates_total(self):
        stats = CycleStats()
        stats.charge("l1i_stall", 10)
        stats.charge("fault_overhead", 5)
        assert stats.l1i_stall == 10
        assert stats.total_cycles == 15

    def test_charge_instructions(self):
        stats = CycleStats()
        stats.charge_instructions(100, cpi=1.5)
        stats.charge_instructions(50, cpi=1.5, kernel=True)
        assert stats.instructions == 150
        assert stats.kernel_instructions == 50
        assert stats.total_cycles == pytest.approx(225)

    def test_snapshot_isolated(self):
        stats = CycleStats()
        stats.charge("l1i_stall", 1)
        snap = stats.snapshot()
        stats.charge("l1i_stall", 2)
        assert snap.l1i_stall == 1

    def test_delta_since(self):
        stats = CycleStats()
        stats.charge_instructions(10, cpi=1.0)
        snap = stats.snapshot()
        stats.charge_instructions(5, cpi=1.0)
        delta = stats.delta_since(snap)
        assert delta.instructions == 5
        assert delta.total_cycles == pytest.approx(5)


class TestCoreTlbMaintenance:
    def test_flush_tlb_asid_clears_micro_fully(self):
        platform = Platform()
        core = platform.cores[0]
        from repro.hw.tlb import TlbEntry
        entry = TlbEntry(vpn=1, asid=3, pfn=1, writable=False,
                         global_=False, domain=1)
        core.main_tlb.insert(entry)
        core.micro_itlb.insert(entry)
        flushed = core.flush_tlb_asid(3)
        assert flushed == 1
        assert core.micro_itlb.occupancy() == 0

    def test_flush_tlb_va_covers_all_structures(self):
        platform = Platform()
        core = platform.cores[0]
        from repro.hw.tlb import TlbEntry
        entry = TlbEntry(vpn=9, asid=1, pfn=1, writable=False,
                         global_=True, domain=1)
        core.main_tlb.insert(entry)
        core.micro_itlb.insert(entry, key_vpn=9)
        core.micro_dtlb.insert(entry, key_vpn=9)
        assert core.flush_tlb_va(9) == 3
