#!/usr/bin/env python3
"""A steady system: four apps alive at once, time-sharing four cores.

Shows the paper's scalability argument in action: with private page
tables each co-running process duplicates the translations for the
shared libraries; with shared PTPs the duplication (page-table memory
and soft faults) disappears.

Run:  python examples/multitasking_study.py
"""

from repro import Kernel
from repro.android import boot_android
from repro.kernel.config import shared_ptp_config, stock_config
from repro.workloads import APP_PROFILES, MultitaskingWorkload

APPS = [APP_PROFILES[name] for name in
        ("Angrybirds", "Email", "Google Calendar", "WPS")]


def main() -> None:
    print(f"{'kernel':12s} {'PTP frames':>10s} {'file faults':>12s} "
          f"{'iTLB stalls':>12s} {'ctx switches':>13s}")
    for label, factory in (("stock", stock_config),
                           ("shared-ptp", shared_ptp_config)):
        kernel = Kernel(config=factory())
        runtime = boot_android(kernel)
        workload = MultitaskingWorkload(runtime, APPS)
        result = workload.run(quanta=120)
        print(f"{label:12s} {result.ptp_frames:10d} "
              f"{result.file_backed_faults:12d} "
              f"{result.itlb_stall:12.0f} {result.context_switches:13d}")
        workload.finish()
    print("\n(Shared PTPs keep page-table memory nearly flat and avoid "
          "re-faulting the preloaded code in every process.)")


if __name__ == "__main__":
    main()
