#!/usr/bin/env python3
"""A low-level tour of the library: page tables, faults, sharing, TLBs.

This example uses the kernel API directly — no Android layer — to show
the mechanics the paper builds on: demand paging into a page-table page,
COW sharing of that PTP at fork, the NEED_COPY unshare on a write, and
a shared global TLB entry being refused to a non-zygote process via a
domain fault.

Run:  python examples/pagetable_walkthrough.py
"""

from repro import Kernel, shared_ptp_tlb_config
from repro.common import events as ev
from repro.common.constants import PAGE_SIZE
from repro.common.perms import MapFlags, Prot


def main() -> None:
    kernel = Kernel(config=shared_ptp_tlb_config())

    # A "zygote": the exec-time flag marks its executable file mappings
    # as global (shared TLB entries).
    zygote = kernel.create_process("zygote")
    kernel.exec_zygote(zygote)

    libc = kernel.page_cache.create_file("libc.so", size_pages=64)
    code = kernel.syscalls.mmap(zygote, 64 * PAGE_SIZE,
                                Prot.READ | Prot.EXEC, MapFlags.PRIVATE,
                                file=libc)
    heap = kernel.syscalls.mmap(zygote, 32 * PAGE_SIZE,
                                Prot.READ | Prot.WRITE,
                                MapFlags.PRIVATE | MapFlags.ANONYMOUS,
                                addr=0x7000_0000)
    print(f"mapped code at {code.start:#x} (global={code.global_}), "
          f"heap at {heap.start:#x}")

    # Demand paging: executing code pages populates PTEs.
    kernel.run(zygote, [ev.ifetch(code.start + i * PAGE_SIZE)
                        for i in range(16)])
    kernel.run(zygote, [ev.store(heap.start + i * PAGE_SIZE)
                        for i in range(8)])
    slot = zygote.mm.tables.slot_for(code.start)
    print(f"zygote's code PTP now holds {slot.ptp.valid_count} PTEs "
          f"(faults so far: {zygote.counters.total_faults})")

    # Fork: the child gets references to the zygote's PTPs, not copies.
    child, report = kernel.fork(zygote, "app")
    print(f"fork shared {report.slots_shared} PTPs and copied only "
          f"{report.ptes_copied} PTEs "
          f"(write-protected {report.ptes_write_protected} for COW)")

    # The child re-executes the same code with zero page faults...
    before = child.counters.total_faults
    kernel.run(child, [ev.ifetch(code.start + i * PAGE_SIZE)
                       for i in range(16)])
    print(f"child executed 16 shared-code pages with "
          f"{child.counters.total_faults - before} faults")

    # ... and a PTE the child populates is visible to the zygote too.
    kernel.run(child, [ev.ifetch(code.start + 20 * PAGE_SIZE)])
    in_zygote = zygote.mm.tables.lookup_pte(code.start + 20 * PAGE_SIZE)
    print(f"PTE populated by the child is visible in the zygote: "
          f"{in_zygote is not None}")

    # A write inside the shared PTP's range unshares it (COW of the
    # page table itself).
    kernel.run(child, [ev.store(heap.start)])
    print(f"after the child's heap write: unshare events = "
          f"{child.counters.ptp_unshare_events} "
          f"({dict(child.counters.unshare_by_trigger)}), PTEs copied = "
          f"{child.counters.ptes_copied_unshare}")

    # A non-zygote daemon mapping the same library at the same address
    # must not use the zygote's global TLB entries: domain fault.
    daemon = kernel.create_process("daemon")
    kernel.syscalls.mmap(daemon, 64 * PAGE_SIZE, Prot.READ | Prot.EXEC,
                         MapFlags.PRIVATE, file=libc, addr=code.start)
    kernel.run(daemon, [ev.ifetch(code.start + i * PAGE_SIZE)
                        for i in range(4)])
    print(f"non-zygote daemon took {daemon.counters.domain_faults} domain "
          f"faults before falling back to its own page tables")

    core = kernel.platform.cores[0]
    print(f"main TLB: {core.main_tlb.occupancy()} entries, of which "
          f"{core.main_tlb.global_entry_count()} global")


if __name__ == "__main__":
    main()
