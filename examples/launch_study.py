#!/usr/bin/env python3
"""Application-launch study: Figures 7-9 at a reduced scale.

Launches the Helloworld app repeatedly under the four kernel/layout
configurations and prints execution-time box plots, I-cache stalls, and
the PTP/page-fault comparison.

Run:  python examples/launch_study.py
"""

from repro.experiments.common import Scale
from repro.experiments.launch import run_launch_experiment


def main() -> None:
    scale = Scale(name="example", launch_rounds=6)
    result = run_launch_experiment(scale)
    print(result.render())


if __name__ == "__main__":
    main()
