#!/usr/bin/env python3
"""Page-table memory vs. process count (the paper's motivation).

Under private page tables, translation memory for shared regions grows
linearly with the number of processes; with shared PTPs it stays nearly
flat — only per-process private state (stack, heap COW) adds frames.

Run:  python examples/scalability_study.py
"""

from repro.experiments.ablations import scalability_sweep


def main() -> None:
    result = scalability_sweep(process_counts=[1, 2, 4, 8, 16, 32])
    print(result.render())
    first, last = result.points[0], result.points[-1]
    stock_growth = last.stock_ptp_frames - first.stock_ptp_frames
    shared_growth = last.shared_ptp_frames - first.shared_ptp_frames
    factor = max(1, last.processes - first.processes)
    print(f"\nPer additional process: stock adds "
          f"~{stock_growth / factor:.1f} PTP frames, shared adds "
          f"~{shared_growth / factor:.1f}")


if __name__ == "__main__":
    main()
