#!/usr/bin/env python3
"""Binder IPC under the six Figure-13 configurations.

Shows how shared TLB entries change the instruction main-TLB stalls of
a client/server pair pinned to one core, with and without ASIDs.

Run:  python examples/ipc_binder_study.py
"""

from repro import Kernel
from repro.android import boot_android
from repro.android.binder import BinderBenchmark, BinderConfig
from repro.kernel.config import (
    shared_ptp_config,
    shared_ptp_tlb_config,
    stock_config,
)


def main() -> None:
    configs = [
        ("stock", stock_config),
        ("shared PTP", shared_ptp_config),
        ("shared PTP & TLB", shared_ptp_tlb_config),
    ]
    baseline = None
    print(f"{'ASID':8s} {'kernel':18s} {'client iTLB':>12s} "
          f"{'server iTLB':>12s} {'vs baseline':>22s}")
    for asid in (False, True):
        for label, factory in configs:
            kernel = Kernel(config=factory().with_(asid_enabled=asid))
            runtime = boot_android(kernel)
            bench = BinderBenchmark(runtime,
                                    config=BinderConfig(invocations=150))
            result = bench.run()
            if baseline is None:
                baseline = result
            rel_client = result.client.itlb_stall / baseline.client.itlb_stall
            rel_server = result.server.itlb_stall / baseline.server.itlb_stall
            print(f"{('on' if asid else 'off'):8s} {label:18s} "
                  f"{result.client.itlb_stall:12.0f} "
                  f"{result.server.itlb_stall:12.0f} "
                  f"{100 * rel_client:9.1f}% / {100 * rel_server:.1f}%")
    print("\n(The paper's Figure 13: TLB sharing cuts client/server "
          "stalls by up to 36%/19% without ASIDs, and still helps with "
          "ASIDs enabled.)")


if __name__ == "__main__":
    main()
