#!/usr/bin/env python3
"""Quickstart: boot Android, fork an app, watch translations being shared.

Run:  python examples/quickstart.py
"""

from repro import Kernel, shared_ptp_tlb_config, stock_config
from repro.android import boot_android
from repro.common.rng import DeterministicRng
from repro.workloads import HELLOWORLD, launch_app


def launch_under(config, label: str) -> None:
    kernel = Kernel(config=config)
    runtime = boot_android(kernel)

    print(f"--- {label} ---")
    print(f"zygote populated {runtime.report.instruction_ptes} instruction "
          f"PTEs and {runtime.report.anon_ptes} anonymous PTEs across "
          f"{runtime.report.populated_slots} page-table pages")

    child, fork_report = runtime.fork_app("demo-app")
    print(f"fork: {fork_report.cycles / 1e6:.2f}M cycles, "
          f"{fork_report.child_ptps_allocated} PTPs allocated, "
          f"{fork_report.slots_shared} PTPs shared, "
          f"{fork_report.ptes_copied} PTEs copied")
    kernel.exit_task(child)

    session = launch_app(runtime, HELLOWORLD, DeterministicRng(1, "demo"))
    launch = session.launch
    print(f"launch: {launch.cycles / 1e6:.1f}M cycles, "
          f"{launch.file_backed_faults} file-backed faults, "
          f"{launch.ptps_allocated} PTPs allocated, "
          f"{launch.shared_ptps_end} still shared at the end")
    session.finish()
    print()


def main() -> None:
    launch_under(stock_config(), "stock Android kernel")
    launch_under(shared_ptp_tlb_config(),
                 "shared page tables + shared TLB entries")


if __name__ == "__main__":
    main()
